package store

import (
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDegraded is returned by a Resilient store while it is serving
// degraded: the backend is unavailable and a reopen is pending. Callers
// treat it as a silent miss — the transition itself already surfaced
// the underlying error.
var ErrDegraded = errors.New("store: degraded, backend unavailable")

// Status is the health summary of a Resilient store, served on
// /healthz and sampled by the metrics gauges.
type Status struct {
	// Enabled is always true for a configured store; the service omits
	// the whole block when no store is configured.
	Enabled bool `json:"enabled"`
	// Degraded reports that the backend is down and verdicts are being
	// served memory-only while reopen attempts back off.
	Degraded bool `json:"degraded"`
	// LastError is the failure that caused the current or most recent
	// degradation, empty if the store has never degraded.
	LastError string `json:"lastError,omitempty"`
	// Transitions counts healthy→degraded flips over the process life.
	Transitions int64 `json:"transitions,omitempty"`
	// File summarizes the embedded backend when it is healthy and
	// file-based.
	File *FileStats `json:"file,omitempty"`
}

// StatusReporter is implemented by stores that can describe their
// health; the service's /healthz upgrades to it when present.
type StatusReporter interface {
	Status() Status
}

// Resilient wraps a VerdictStore with graceful degradation: any error
// from the backend (or from opening it in the first place) flips the
// wrapper into a degraded mode where Get and Put return ErrDegraded
// immediately — the service above keeps answering from memory — while
// a background goroutine retries opening the backend with exponential
// backoff. One WARN is logged per degradation and one INFO per
// recovery, never one per failed operation.
type Resilient struct {
	open   func() (VerdictStore, error)
	logger *slog.Logger
	base   time.Duration
	max    time.Duration
	stop   chan struct{}

	mu       sync.Mutex
	cur      VerdictStore // nil while degraded
	degraded bool
	lastErr  error
	retrying bool
	closed   bool

	transitions atomic.Int64
}

// ResilientOption configures NewResilient.
type ResilientOption func(*Resilient)

// WithLogger sets the transition logger (default: discard).
func WithLogger(l *slog.Logger) ResilientOption {
	return func(r *Resilient) {
		if l != nil {
			r.logger = l
		}
	}
}

// WithBackoff sets the reopen backoff bounds: the first retry waits
// base, each failure doubles the wait up to max (defaults 1s and 2m).
func WithBackoff(base, max time.Duration) ResilientOption {
	return func(r *Resilient) {
		if base > 0 {
			r.base = base
		}
		if max >= r.base {
			r.max = max
		}
	}
}

// NewResilient builds the wrapper and performs the first open. A
// failing first open is not fatal: the wrapper starts degraded with the
// retry loop already running, so a server whose disk is briefly missing
// at boot self-heals.
func NewResilient(open func() (VerdictStore, error), opts ...ResilientOption) *Resilient {
	r := &Resilient{
		open:   open,
		logger: slog.New(slog.DiscardHandler),
		base:   time.Second,
		max:    2 * time.Minute,
		stop:   make(chan struct{}),
	}
	for _, o := range opts {
		o(r)
	}
	st, err := open()
	if err != nil {
		r.mu.Lock()
		r.degradeLocked(err)
		r.mu.Unlock()
		return r
	}
	r.cur = st
	return r
}

// Get implements VerdictStore. While degraded it returns ErrDegraded
// without touching the backend.
func (r *Resilient) Get(key string) ([]byte, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, false, ErrClosed
	}
	if r.degraded {
		return nil, false, ErrDegraded
	}
	val, ok, err := r.cur.Get(key)
	if err != nil {
		r.degradeLocked(err)
		return nil, false, err
	}
	return val, ok, nil
}

// Put implements VerdictStore. While degraded it drops the write and
// returns ErrDegraded — the verdict stays in the memory cache and a
// future miss will recompute and re-persist it.
func (r *Resilient) Put(key string, val []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.degraded {
		return ErrDegraded
	}
	if err := r.cur.Put(key, val); err != nil {
		r.degradeLocked(err)
		return err
	}
	return nil
}

// Status implements StatusReporter.
func (r *Resilient) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{Enabled: true, Degraded: r.degraded, Transitions: r.transitions.Load()}
	if r.lastErr != nil {
		st.LastError = r.lastErr.Error()
	}
	if fs, ok := r.cur.(*FileStore); ok && !r.degraded {
		s := fs.Stats()
		st.File = &s
	}
	return st
}

// Degraded reports whether the wrapper is currently serving degraded.
func (r *Resilient) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.degraded
}

// Close shuts the wrapper and its backend; the retry goroutine (if
// running) exits on its next wakeup.
func (r *Resilient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	close(r.stop)
	if r.cur != nil {
		err := r.cur.Close()
		r.cur = nil
		return err
	}
	return nil
}

// degradeLocked flips into degraded mode: the broken backend is closed
// and dropped, the transition is logged once, and the reopen loop
// starts (unless one is already backing off from a previous failure).
// Called with mu held.
func (r *Resilient) degradeLocked(cause error) {
	r.lastErr = cause
	if r.cur != nil {
		r.cur.Close() //nolint:errcheck // already broken; nothing to do with its close error
		r.cur = nil
	}
	if r.degraded {
		return
	}
	r.degraded = true
	r.transitions.Add(1)
	r.logger.Warn("verdict store degraded; serving memory-only",
		"error", cause.Error(), "retryIn", r.base.String())
	if !r.retrying {
		r.retrying = true
		//chaselint:owned exits via r.stop on Close, or on successful reopen; retrying flag makes it unique
		go r.reopenLoop()
	}
}

// reopenLoop retries open with exponential backoff until it succeeds
// or the wrapper closes.
func (r *Resilient) reopenLoop() {
	backoff := r.base
	for {
		t := time.NewTimer(backoff)
		select {
		case <-r.stop:
			t.Stop()
			return
		case <-t.C:
		}
		st, err := r.open()
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			if err == nil {
				st.Close() //nolint:errcheck // wrapper already closed; best-effort release
			}
			return
		}
		if err == nil {
			r.cur = st
			r.degraded = false
			r.retrying = false
			r.mu.Unlock()
			r.logger.Info("verdict store recovered")
			return
		}
		r.lastErr = err
		r.mu.Unlock()
		r.logger.Debug("verdict store reopen failed", "error", err.Error(), "nextRetryIn", (backoff * 2).String())
		if backoff *= 2; backoff > r.max {
			backoff = r.max
		}
	}
}
