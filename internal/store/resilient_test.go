package store

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"testing"
	"time"
)

// fakeStore is a scriptable in-memory VerdictStore whose operations
// can be made to fail on demand.
type fakeStore struct {
	mu     sync.Mutex
	m      map[string][]byte
	fail   error
	closed bool
}

func newFakeStore() *fakeStore { return &fakeStore{m: make(map[string][]byte)} }

func (f *fakeStore) setFail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = err
}

func (f *fakeStore) Get(key string) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return nil, false, f.fail
	}
	v, ok := f.m[key]
	return v, ok, nil
}

func (f *fakeStore) Put(key string, val []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.m[key] = append([]byte(nil), val...)
	return nil
}

func (f *fakeStore) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// countingHandler counts log records by level, for the
// one-WARN-per-transition assertion.
type countingHandler struct {
	mu    sync.Mutex
	warns int
	infos int
}

func (h *countingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *countingHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch r.Level {
	case slog.LevelWarn:
		h.warns++
	case slog.LevelInfo:
		h.infos++
	}
	return nil
}
func (h *countingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *countingHandler) WithGroup(string) slog.Handler      { return h }

func (h *countingHandler) counts() (warns, infos int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.warns, h.infos
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResilientDegradeAndRecover: a backend failure flips the wrapper
// into degraded mode (one WARN), degraded ops return ErrDegraded
// without touching the backend, and the reopen loop restores service
// (one INFO) once the backend heals.
func TestResilientDegradeAndRecover(t *testing.T) {
	h := &countingHandler{}
	injected := errors.New("injected backend failure")
	var mu sync.Mutex
	openOK := true
	var current *fakeStore
	open := func() (VerdictStore, error) {
		mu.Lock()
		defer mu.Unlock()
		if !openOK {
			return nil, errors.New("injected open failure")
		}
		current = newFakeStore()
		return current, nil
	}
	r := NewResilient(open, WithLogger(slog.New(h)), WithBackoff(2*time.Millisecond, 10*time.Millisecond))
	defer r.Close()

	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatalf("healthy Put: %v", err)
	}
	if v, ok, err := r.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("healthy Get = (%q, %v, %v)", v, ok, err)
	}
	if r.Degraded() {
		t.Fatal("healthy wrapper reports degraded")
	}

	// Break the backend AND the reopen, so degradation holds.
	mu.Lock()
	openOK = false
	mu.Unlock()
	current.setFail(injected)
	if err := r.Put("k2", []byte("v2")); !errors.Is(err, injected) {
		t.Fatalf("Put on broken backend = %v, want the backend error", err)
	}
	if !r.Degraded() {
		t.Fatal("wrapper not degraded after backend failure")
	}
	if err := r.Put("k3", []byte("v3")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Put = %v, want ErrDegraded", err)
	}
	if _, _, err := r.Get("k"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Get = %v, want ErrDegraded", err)
	}
	st := r.Status()
	if !st.Enabled || !st.Degraded || st.Transitions != 1 || st.LastError == "" {
		t.Fatalf("Status = %+v, want enabled, degraded, 1 transition, an error", st)
	}
	if warns, _ := h.counts(); warns != 1 {
		t.Fatalf("%d WARNs for one degradation, want exactly 1", warns)
	}

	// Heal the open path; the backoff loop should recover on its own.
	mu.Lock()
	openOK = true
	mu.Unlock()
	waitFor(t, "recovery", func() bool { return !r.Degraded() })
	if err := r.Put("k4", []byte("v4")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if warns, infos := h.counts(); warns != 1 || infos != 1 {
		t.Fatalf("after recovery: %d WARNs / %d INFOs, want 1 / 1", warns, infos)
	}
	if st := r.Status(); st.Degraded || st.Transitions != 1 {
		t.Fatalf("Status after recovery = %+v", st)
	}
}

// TestResilientStartsDegradedOnOpenFailure: a failing first open is
// not fatal — the wrapper starts degraded and self-heals when the
// backend becomes available.
func TestResilientStartsDegradedOnOpenFailure(t *testing.T) {
	var mu sync.Mutex
	openOK := false
	open := func() (VerdictStore, error) {
		mu.Lock()
		defer mu.Unlock()
		if !openOK {
			return nil, errors.New("disk not mounted yet")
		}
		return newFakeStore(), nil
	}
	r := NewResilient(open, WithBackoff(2*time.Millisecond, 10*time.Millisecond))
	defer r.Close()
	if !r.Degraded() {
		t.Fatal("wrapper not degraded after failed first open")
	}
	if err := r.Put("k", []byte("v")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put while degraded = %v, want ErrDegraded", err)
	}
	mu.Lock()
	openOK = true
	mu.Unlock()
	waitFor(t, "self-heal", func() bool { return !r.Degraded() })
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put after self-heal: %v", err)
	}
}

// TestResilientClose: Close shuts the backend, stops the retry loop,
// and makes every subsequent operation ErrClosed.
func TestResilientClose(t *testing.T) {
	fs := newFakeStore()
	r := NewResilient(func() (VerdictStore, error) { return fs, nil })
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !fs.closed {
		t.Fatal("backend not closed")
	}
	if err := r.Put("k", []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := r.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestResilientCloseWhileDegraded: closing mid-backoff must not hang
// and must stop the retry goroutine.
func TestResilientCloseWhileDegraded(t *testing.T) {
	r := NewResilient(func() (VerdictStore, error) {
		return nil, errors.New("always down")
	}, WithBackoff(time.Hour, time.Hour)) // a retry that would never fire
	if !r.Degraded() {
		t.Fatal("not degraded")
	}
	done := make(chan error, 1)
	go func() { done <- r.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung while degraded")
	}
}

// TestResilientFileStatus: Status over a healthy FileStore backend
// includes the file summary.
func TestResilientFileStatus(t *testing.T) {
	fs := NewMemFS()
	r := NewResilient(func() (VerdictStore, error) {
		return Open(testPath, Options{Fsync: FsyncNever, FS: fs})
	})
	defer r.Close()
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	st := r.Status()
	if st.File == nil || st.File.Records != 1 || st.File.Path != testPath {
		t.Fatalf("Status.File = %+v, want 1 record at %q", st.File, testPath)
	}
}
