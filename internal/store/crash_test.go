package store

import (
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"
	"time"
)

// putRec remembers one acknowledged Put and where the log ended after
// it — the durability boundary the crash property tests cut against.
type putRec struct {
	key, val string
	end      int64
}

// buildLog runs a scripted sequence of puts under FsyncAlways and
// returns the final log image plus the per-put durability boundaries.
// The script mixes fresh keys, overwrites, empty and binary values.
func buildLog(t *testing.T, n int) ([]byte, []putRec) {
	t.Helper()
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways})
	puts := make([]putRec, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i%5) // 5 keys, repeatedly overwritten
		val := fmt.Sprintf("val-%d\x00%s", i, strings.Repeat("x", i%17))
		mustPut(t, s, key, val)
		puts = append(puts, putRec{key: key, val: val, end: s.Stats().SizeBytes})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return fs.FileData(testPath), puts
}

// expectedAt computes the live map a correct recovery must produce
// from the log prefix [0, cut): last-wins over every put whose record
// ends at or before the cut.
func expectedAt(puts []putRec, cut int64) map[string]string {
	want := make(map[string]string)
	for _, p := range puts {
		if p.end <= cut {
			want[p.key] = p.val
		}
	}
	return want
}

// verifyRecovered opens the store over image truncated (or corrupted)
// as given and checks it serves exactly the expected live set.
func verifyRecovered(t *testing.T, s *FileStore, want map[string]string, label string) {
	t.Helper()
	if got := s.Len(); got != len(want) {
		t.Fatalf("%s: recovered %d records, want %d", label, got, len(want))
	}
	for k, v := range want {
		got, ok, err := s.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("%s: Get(%q) = (%q, %v, %v), want (%q, true, nil)", label, k, got, ok, err, v)
		}
	}
}

// TestCrashAtEveryByte is the core crash-safety property: for a crash
// image cut at EVERY byte offset of the log, reopening serves exactly
// the fully-acknowledged puts whose records fit in the prefix — never
// a torn record, never a corrupt value, never a lost earlier verdict.
func TestCrashAtEveryByte(t *testing.T) {
	image, puts := buildLog(t, 40)
	for cut := int64(0); cut <= int64(len(image)); cut++ {
		fs := NewMemFS()
		fs.SetFileData(testPath, image[:cut])
		s, err := Open(testPath, Options{Fsync: FsyncAlways, FS: fs})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		verifyRecovered(t, s, expectedAt(puts, cut), fmt.Sprintf("cut %d", cut))
		durable := int64(len(magic)) // where the valid prefix ends
		if i := lastFit(puts, cut); i >= 0 {
			durable = puts[i].end
		}
		wantRecovered := cut - durable
		if cut < int64(len(magic)) {
			wantRecovered = 0 // shorter than the header: reset, nothing "recovered"
		}
		if st := s.Stats(); st.RecoveredBytes != wantRecovered {
			t.Fatalf("cut %d: RecoveredBytes = %d, want %d", cut, st.RecoveredBytes, wantRecovered)
		}
		// The recovered store must accept new writes and survive a clean
		// reopen — recovery may not leave the file in a half-state.
		if err := s.Put("post-crash", []byte("fresh")); err != nil {
			t.Fatalf("cut %d: Put after recovery: %v", cut, err)
		}
		s.Close()
		s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
		wantGet(t, s2, "post-crash", "fresh")
		s2.Close()
	}
}

// lastFit returns the index of the last put whose record fits in the
// prefix [0, cut), or -1.
func lastFit(puts []putRec, cut int64) int {
	last := -1
	for i, p := range puts {
		if p.end <= cut {
			last = i
		}
	}
	return last
}

// TestBitFlipNeverServesCorruptValue flips every single byte of a
// valid log in turn and asserts the store either refuses to open
// (header damage) or serves only values it can vouch for: the state
// must equal recovery at some put boundary, because a flipped record
// fails its checksum and truncates the scan there.
func TestBitFlipNeverServesCorruptValue(t *testing.T) {
	image, puts := buildLog(t, 12)
	for i := range image {
		mutated := append([]byte(nil), image...)
		mutated[i] ^= 0xFF
		fs := NewMemFS()
		fs.SetFileData(testPath, mutated)
		s, err := Open(testPath, Options{Fsync: FsyncAlways, FS: fs})
		if err != nil {
			if i < len(magic) && errors.Is(err, ErrNotStore) {
				continue // header damage: refusing to open is correct
			}
			t.Fatalf("flip %d: Open: %v", i, err)
		}
		// The flip lands in record k, so the scan must truncate at k's
		// start: state is recovery at the previous put boundary.
		cut := int64(len(magic))
		for _, p := range puts {
			if int64(i) < p.end {
				break
			}
			cut = p.end
		}
		verifyRecovered(t, s, expectedAt(puts, cut), fmt.Sprintf("flip %d", i))
		s.Close()
	}
}

// TestFsyncErrorRollsBack: an fsync failure under FsyncAlways must
// fail the Put, leave the log at its previous acknowledged end, and
// leave the store usable once fsync works again.
func TestFsyncErrorRollsBack(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s.Close()
	mustPut(t, s, "a", "alpha")
	before := s.Stats().SizeBytes

	fs.SetSyncHook(func(string) error { return errors.New("injected fsync failure") })
	if err := s.Put("b", []byte("beta")); err == nil {
		t.Fatal("Put succeeded despite fsync failure")
	}
	if got := s.Stats().SizeBytes; got != before {
		t.Fatalf("log size %d after rolled-back Put, want %d", got, before)
	}
	wantMiss(t, s, "b")
	wantGet(t, s, "a", "alpha")

	fs.SetSyncHook(nil)
	mustPut(t, s, "b", "beta")
	wantGet(t, s, "b", "beta")
}

// TestShortWriteRollsBack: a short append (disk full mid-record, say)
// must be truncated away so no torn record is left for a later crash.
func TestShortWriteRollsBack(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s.Close()
	mustPut(t, s, "a", "alpha")

	fail := true
	fs.SetWriteHook(func(name string, op int, p []byte) (int, error) {
		if fail && name == testPath {
			return len(p) / 2, nil
		}
		return len(p), nil
	})
	if err := s.Put("b", []byte("beta")); err == nil {
		t.Fatal("Put succeeded despite short write")
	}
	fail = false
	wantMiss(t, s, "b")
	mustPut(t, s, "b", "beta")
	s.Close()

	s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s2.Close()
	wantGet(t, s2, "a", "alpha")
	wantGet(t, s2, "b", "beta")
	if st := s2.Stats(); st.RecoveredBytes != 0 {
		t.Fatalf("RecoveredBytes = %d after in-process rollback, want 0", st.RecoveredBytes)
	}
}

// TestENOSPC: out-of-space appends fail cleanly and the store recovers
// as soon as space frees up.
func TestENOSPC(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s.Close()
	mustPut(t, s, "a", "alpha")

	full := true
	fs.SetWriteHook(func(name string, op int, p []byte) (int, error) {
		if full && name == testPath {
			return 0, syscall.ENOSPC
		}
		return len(p), nil
	})
	err := s.Put("b", []byte("beta"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put = %v, want ENOSPC", err)
	}
	wantGet(t, s, "a", "alpha")
	full = false
	mustPut(t, s, "b", "beta")
	wantGet(t, s, "b", "beta")
}

// TestRollbackFailureGoesSticky: when the append fails AND the
// rollback truncate fails, the handle can no longer vouch for the file
// and must refuse all further operations with a sticky error.
func TestRollbackFailureGoesSticky(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s.Close()
	mustPut(t, s, "a", "alpha")

	fs.SetWriteHook(func(name string, op int, p []byte) (int, error) {
		return 0, errors.New("injected write failure")
	})
	fs.SetTruncateHook(func(string, int64) error { return errors.New("injected truncate failure") })
	if err := s.Put("b", []byte("beta")); err == nil {
		t.Fatal("Put succeeded despite write failure")
	}
	fs.SetWriteHook(nil)
	fs.SetTruncateHook(nil)
	// Even with the faults cleared, the handle is done.
	if err := s.Put("c", []byte("gamma")); err == nil {
		t.Fatal("Put succeeded on a sticky-failed store")
	}
	if _, _, err := s.Get("a"); err == nil {
		t.Fatal("Get succeeded on a sticky-failed store")
	}
	// A reopen — what the Resilient wrapper does — starts clean.
	s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s2.Close()
	wantGet(t, s2, "a", "alpha")
}

// TestCrashMidCompaction: a rename failure (standing in for a crash
// between temp write and rename) must abort compaction with zero data
// loss, and the stale temp file a real crash leaves behind must be
// swept by the next Open.
func TestCrashMidCompaction(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways, CompactMinBytes: 512})
	renameFailed := make(chan struct{}, 16)
	fail := true
	fs.SetRenameHook(func(oldpath, newpath string) error {
		if fail && strings.HasSuffix(oldpath, compactSuffix) {
			renameFailed <- struct{}{}
			return errors.New("injected rename failure")
		}
		return nil
	})
	for i := 0; i < 50; i++ {
		mustPut(t, s, "hot", fmt.Sprintf("round-%d", i))
	}
	mustPut(t, s, "cold", "stable")
	select {
	case <-renameFailed:
	case <-time.After(5 * time.Second):
		t.Fatal("compaction never attempted its rename")
	}
	// The failed compaction must not have lost or corrupted anything.
	wantGet(t, s, "hot", "round-49")
	wantGet(t, s, "cold", "stable")
	if s.Stats().Compactions != 0 {
		t.Fatalf("Compactions = %d after aborted compaction, want 0", s.Stats().Compactions)
	}

	// Let compaction succeed; more dead bytes will re-trigger it.
	fail = false
	for i := 0; i < 50; i++ {
		mustPut(t, s, "hot", fmt.Sprintf("again-%d", i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no compaction after clearing fault: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	wantGet(t, s, "hot", "again-49")
	wantGet(t, s, "cold", "stable")
	s.Close()

	// A crash that dies between temp write and rename leaves the temp
	// on disk; Open must remove it and serve the original log.
	fs.SetFileData(testPath+compactSuffix, []byte("half-written compaction temp"))
	s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s2.Close()
	wantGet(t, s2, "hot", "again-49")
	wantGet(t, s2, "cold", "stable")
	if fs.Exists(testPath + compactSuffix) {
		t.Fatal("stale compaction temp survived Open")
	}
}

// TestIntervalCrashLosesOnlyUnsynced: under FsyncInterval a crash
// before the flusher fires loses the unsynced tail — and nothing else.
func TestIntervalCrashLosesOnlyUnsynced(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncInterval, Interval: time.Hour})
	mustPut(t, s, "durable", "yes")
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	mustPut(t, s, "volatile", "gone")
	fs.Crash()
	s.Close()

	s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s2.Close()
	wantGet(t, s2, "durable", "yes")
	wantMiss(t, s2, "volatile")
}
