package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const testPath = "verdicts.db"

// openMem opens a store over fs at the shared test path, failing the
// test on error.
func openMem(t *testing.T, fs *MemFS, opts Options) *FileStore {
	t.Helper()
	opts.FS = fs
	s, err := Open(testPath, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustPut(t *testing.T, s *FileStore, key, val string) {
	t.Helper()
	if err := s.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func wantGet(t *testing.T, s *FileStore, key, val string) {
	t.Helper()
	got, ok, err := s.Get(key)
	if err != nil || !ok || string(got) != val {
		t.Fatalf("Get(%q) = (%q, %v, %v), want (%q, true, nil)", key, got, ok, err, val)
	}
}

func wantMiss(t *testing.T, s *FileStore, key string) {
	t.Helper()
	got, ok, err := s.Get(key)
	if err != nil || ok {
		t.Fatalf("Get(%q) = (%q, %v, %v), want miss", key, got, ok, err)
	}
}

func TestPutGetOverwriteReopen(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways})
	mustPut(t, s, "a", "alpha")
	mustPut(t, s, "b", "beta")
	mustPut(t, s, "a", "alpha-2") // overwrite: later record wins
	wantGet(t, s, "a", "alpha-2")
	wantGet(t, s, "b", "beta")
	wantMiss(t, s, "c")
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	st := s.Stats()
	if st.Records != 2 || st.DeadBytes == 0 {
		t.Fatalf("Stats = %+v, want 2 records and nonzero dead bytes", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh process: reopen over the same bytes.
	s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s2.Close()
	wantGet(t, s2, "a", "alpha-2")
	wantGet(t, s2, "b", "beta")
	wantMiss(t, s2, "c")
	if st := s2.Stats(); st.RecoveredBytes != 0 {
		t.Fatalf("clean reopen recovered %d bytes, want 0", st.RecoveredBytes)
	}
}

func TestEmptyValueAndBinaryPayload(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways})
	bin := string([]byte{0, 1, 255, 10, 13, 0})
	mustPut(t, s, "empty", "")
	mustPut(t, s, "bin", bin)
	s.Close()
	s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s2.Close()
	wantGet(t, s2, "empty", "")
	wantGet(t, s2, "bin", bin)
}

func TestKeyAndPayloadLimits(t *testing.T) {
	s := openMem(t, NewMemFS(), Options{Fsync: FsyncNever})
	defer s.Close()
	if err := s.Put("", []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Put(strings.Repeat("k", maxKeyLen), []byte("v")); err == nil {
		t.Error("oversized key accepted")
	}
	if err := s.Put("k", make([]byte, maxPayload)); err == nil {
		t.Error("oversized payload accepted")
	}
	// Nothing torn must be left behind by the rejections.
	mustPut(t, s, "k", "v")
	wantGet(t, s, "k", "v")
}

func TestNotAStoreFile(t *testing.T) {
	fs := NewMemFS()
	fs.SetFileData(testPath, []byte("definitely not a verdict store, longer than the magic"))
	if _, err := Open(testPath, Options{FS: fs}); err == nil {
		t.Fatal("Open accepted a non-store file")
	}
	// The stranger's file must be intact.
	if got := string(fs.FileData(testPath)); !strings.HasPrefix(got, "definitely not") {
		t.Fatalf("foreign file was modified: %q", got)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever, "": FsyncInterval,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = (%v, %v), want %v", in, got, err, want)
		}
		if in != "" && got.String() != in {
			t.Errorf("FsyncPolicy.String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
}

func TestClosedStore(t *testing.T) {
	s := openMem(t, NewMemFS(), Options{Fsync: FsyncNever})
	s.Close()
	if err := s.Put("k", []byte("v")); err != ErrClosed {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get("k"); err != ErrClosed {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// TestCompaction drives enough overwrites to trigger background
// compaction and checks that the live set survives byte-identically,
// the log shrinks, and a reopen of the compacted file agrees.
func TestCompaction(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncAlways, CompactMinBytes: 1024})
	// A handful of live keys overwritten many times: mostly dead bytes.
	for round := 0; round < 50; round++ {
		for k := 0; k < 5; k++ {
			mustPut(t, s, fmt.Sprintf("key-%d", k), fmt.Sprintf("val-%d-round-%d", k, round))
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no compaction after %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Stats()
	if st.Records != 5 {
		t.Fatalf("Records = %d after compaction, want 5", st.Records)
	}
	for k := 0; k < 5; k++ {
		wantGet(t, s, fmt.Sprintf("key-%d", k), fmt.Sprintf("val-%d-round-49", k))
	}
	if st.SizeBytes >= 1024 {
		t.Errorf("SizeBytes = %d after compaction, want < 1024", st.SizeBytes)
	}
	if fs.Exists(testPath + compactSuffix) {
		t.Error("compaction temp file left behind")
	}
	s.Close()

	s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s2.Close()
	for k := 0; k < 5; k++ {
		wantGet(t, s2, fmt.Sprintf("key-%d", k), fmt.Sprintf("val-%d-round-49", k))
	}
	if st := s2.Stats(); st.RecoveredBytes != 0 {
		t.Fatalf("reopen after compaction recovered %d bytes, want 0", st.RecoveredBytes)
	}
}

// TestConcurrentAccess hammers the store from many goroutines — puts,
// gets, overwrites, with compaction thresholds low enough to trigger
// mid-traffic — and relies on -race for the verdict.
func TestConcurrentAccess(t *testing.T) {
	s := openMem(t, NewMemFS(), Options{Fsync: FsyncNever, CompactMinBytes: 512})
	defer s.Close()
	const goroutines = 8
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("key-%d", i%7)
				if err := s.Put(key, []byte(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, _, err := s.Get(key); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n != 7 {
		t.Fatalf("Len = %d, want 7", n)
	}
}

// TestOSFS exercises the real-disk FS implementation end to end:
// create, write, reopen, compact, close — the MemFS tests prove the
// logic, this one proves the os wrapper.
func TestOSFS(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.db")
	s, err := Open(path, Options{Fsync: FsyncAlways, CompactMinBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 50; i++ {
		mustPut(t, s, "hot", fmt.Sprintf("round-%d", i))
	}
	mustPut(t, s, "cold", "stable")
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(path, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	wantGet(t, s2, "hot", "round-49")
	wantGet(t, s2, "cold", "stable")

	// A real torn tail: append garbage to the file and reopen.
	s2.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()
	s3, err := Open(path, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	defer s3.Close()
	wantGet(t, s3, "hot", "round-49")
	if st := s3.Stats(); st.RecoveredBytes != 3 {
		t.Fatalf("RecoveredBytes = %d, want 3", st.RecoveredBytes)
	}
}

// TestIntervalFlusher proves the background flusher makes unsynced
// appends durable without explicit Sync calls.
func TestIntervalFlusher(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{Fsync: FsyncInterval, Interval: 5 * time.Millisecond})
	defer s.Close()
	mustPut(t, s, "k", "v")
	deadline := time.Now().Add(5 * time.Second)
	want := fs.FileData(testPath)
	for fs.SyncedLen(testPath) < len(want) {
		if time.Now().After(deadline) {
			t.Fatalf("flusher never synced: %d of %d bytes durable", fs.SyncedLen(testPath), len(want))
		}
		time.Sleep(time.Millisecond)
	}
	fs.Crash()
	s2 := openMem(t, fs, Options{Fsync: FsyncAlways})
	defer s2.Close()
	wantGet(t, s2, "k", "v")
}
