package store

import (
	"io/fs"
	"os"
)

// FS is the filesystem seam of the store: every byte the store reads or
// writes goes through one of these calls, so tests can inject short
// writes, fsync failures, ENOSPC, and crash-at-failpoint without
// touching a real disk. The production implementation is OSFS.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name; removing a missing file is an error, which
	// callers cleaning up speculatively may ignore.
	Remove(name string) error
}

// File is the per-handle surface the store needs: positioned reads and
// writes (the store tracks its own append offset), durability, and
// truncation for torn-tail recovery and write rollback.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
	Close() error
}

// OSFS is the real-disk FS. The zero value is ready to use.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
