// Package store persists analysis verdicts across process restarts.
//
// The decision procedures the service amortizes are PSPACE- to
// 2EXPTIME-complete, so a verdict keyed by the rule set's canonical
// fingerprint is worth keeping far beyond one process lifetime: a
// restarted replica that re-pays every decision is the difference
// between a warm fleet and a cold one. FileStore is the embedded
// backend — a crash-safe, single-file, append-only log of
// (cache key, payload) records — and VerdictStore is the seam that
// keeps the backend pluggable (a Redis or S3 client implements the same
// three methods). Resilient wraps any backend with graceful
// degradation: the store is a cache, so every failure mode degrades to
// memory-only serving instead of failing requests.
//
// On-disk format: an 8-byte magic header, then records of
//
//	uint32 payload length | uint32 CRC32C(payload) | payload
//	payload = uint16 key length | key | value
//
// (all little-endian). Appends are the only mutation; an overwrite is a
// later record for the same key, and recovery keeps the last one.
// Opening a store scans the log, truncates a torn tail at the first
// record that is short or fails its checksum, and rebuilds the
// in-memory key → offset index. Durability is configurable (FsyncAlways
// / FsyncInterval / FsyncNever); compaction rewrites the live records
// to a temporary file and atomically renames it into place.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// VerdictStore is the pluggable persistence backend under the service's
// in-memory verdict cache: Get on a cache miss, Put on a freshly
// computed verdict. Payloads are opaque bytes (the service stores
// serialized api decisions). Implementations must be safe for
// concurrent use; errors must describe the store, not the key, since
// the caller treats any error as "the backend is unhealthy".
type VerdictStore interface {
	// Get returns the payload stored under key, with ok reporting
	// whether the key was present. err is reserved for backend failures
	// — a missing key is (nil, false, nil).
	Get(key string) (val []byte, ok bool, err error)
	// Put stores val under key, replacing any previous payload.
	Put(key string, val []byte) error
	// Close releases the backend. The store is unusable afterwards.
	Close() error
}

var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrNotStore is returned by Open when the file exists but does not
	// begin with the store magic — most likely a path mistake, and
	// truncating someone else's file would be worse than failing.
	ErrNotStore = errors.New("store: file is not a verdict store")
)

// FsyncPolicy selects when appends are made durable.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every Put: an acknowledged verdict
	// survives any crash. The slowest and safest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background interval (Options.Interval,
	// default 1s): a crash loses at most the last interval's verdicts —
	// they were cached computations, re-payable — but never corrupts
	// the file. The default.
	FsyncInterval
	// FsyncNever leaves durability to the OS page cache. Cheapest;
	// a crash may lose everything since the last OS writeback.
	FsyncNever
)

// ParseFsyncPolicy maps the flag spelling to the policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options configure a FileStore; zero values select the defaults noted
// on each field.
type Options struct {
	// Fsync is the durability policy (default FsyncAlways — the zero
	// value must not be the risky choice).
	Fsync FsyncPolicy
	// Interval is the FsyncInterval flush period (default 1s).
	Interval time.Duration
	// FS is the filesystem seam (default the real disk). Tests inject
	// MemFS here.
	FS FS
	// CompactMinBytes is the log size below which compaction never
	// triggers (default 1 MiB). Above it, compaction starts once dead
	// bytes — overwritten records — exceed half the log.
	CompactMinBytes int64
}

const (
	magic      = "chasevs1"
	recHeader  = 8 // uint32 length + uint32 crc
	maxPayload = 16 << 20
	maxKeyLen  = 1 << 16 // klen is a uint16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordRef locates one record in the log.
type recordRef struct {
	off  int64 // record start (length prefix)
	size int64 // total bytes including the 8-byte record header
}

// FileStore is the embedded single-file VerdictStore. Create with Open,
// release with Close. Safe for concurrent use.
type FileStore struct {
	path   string
	fs     FS
	policy FsyncPolicy
	opts   Options

	mu         sync.RWMutex
	f          File
	size       int64 // append offset
	index      map[string]recordRef
	deadBytes  int64 // bytes held by overwritten records
	dirty      bool  // unsynced appends (FsyncInterval bookkeeping)
	failed     error // sticky failure after an unrecoverable rollback
	closed     bool
	compacting bool

	wg        sync.WaitGroup // drains the compaction goroutine
	stopFlush chan struct{}
	flushDone chan struct{}

	compactions    atomic.Int64
	recoveredBytes int64 // torn tail dropped by Open
}

// FileStats is a point-in-time summary of a FileStore, for health
// endpoints and metrics.
type FileStats struct {
	Path           string `json:"path"`
	Records        int    `json:"records"`
	SizeBytes      int64  `json:"sizeBytes"`
	DeadBytes      int64  `json:"deadBytes"`
	Compactions    int64  `json:"compactions"`
	RecoveredBytes int64  `json:"recoveredBytes,omitempty"`
}

// Open opens (or creates) the store at path and recovers its index:
// the log is scanned record by record, and the first torn or corrupt
// record truncates the tail — everything before it is served,
// everything from it on is dropped. A leftover compaction temp file
// from a crash mid-compaction is removed.
func Open(path string, opts Options) (*FileStore, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.CompactMinBytes <= 0 {
		opts.CompactMinBytes = 1 << 20
	}
	// A crash between the compactor's temp write and its rename leaves
	// the temp behind; it was never the live store, so it is garbage.
	opts.FS.Remove(path + compactSuffix) //nolint:errcheck // best-effort cleanup; usually ErrNotExist

	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	s := &FileStore{
		path:   path,
		fs:     opts.FS,
		policy: opts.Fsync,
		opts:   opts,
		f:      f,
		index:  make(map[string]recordRef),
	}
	if err := s.recover(); err != nil {
		f.Close() //nolint:errcheck // the open already failed
		return nil, err
	}
	if s.policy == FsyncInterval {
		s.stopFlush = make(chan struct{})
		s.flushDone = make(chan struct{})
		//chaselint:owned Close stops it via stopFlush and waits on flushDone
		go s.flushLoop()
	}
	return s, nil
}

// recover validates the header, scans the log, truncates any torn
// tail, and builds the index. Called only from Open, before the store
// is shared.
func (s *FileStore) recover() error {
	size, err := s.f.Size()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	if size < int64(len(magic)) {
		// Empty or torn during creation: start fresh.
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("store: reset %s: %w", s.path, err)
		}
		if _, err := s.f.WriteAt([]byte(magic), 0); err != nil {
			return fmt.Errorf("store: write header %s: %w", s.path, err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: sync header %s: %w", s.path, err)
		}
		s.size = int64(len(magic))
		return nil
	}
	hdr := make([]byte, len(magic))
	if _, err := s.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("store: read header %s: %w", s.path, err)
	}
	if string(hdr) != magic {
		return fmt.Errorf("%w: %s", ErrNotStore, s.path)
	}
	body := make([]byte, size-int64(len(magic)))
	if n, err := s.f.ReadAt(body, int64(len(magic))); n < len(body) {
		// ReadAt contract: n == len(body) or err != nil. A full read may
		// legitimately come back with io.EOF, which is not a failure.
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("store: read log %s: %w", s.path, err)
	}
	valid := scanRecords(body, int64(len(magic)), func(key string, _ []byte, ref recordRef) {
		if old, ok := s.index[key]; ok {
			s.deadBytes += old.size
		}
		s.index[key] = ref
	})
	end := int64(len(magic)) + valid
	if end < size {
		if err := s.f.Truncate(end); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", s.path, err)
		}
		if s.policy != FsyncNever {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("store: sync recovered %s: %w", s.path, err)
			}
		}
		s.recoveredBytes = size - end
	}
	s.size = end
	return nil
}

// scanRecords walks buf — records starting at file offset base — and
// calls emit for each intact record in log order. It returns the number
// of bytes consumed: the valid prefix ends at the first record that is
// short, oversized, or fails its checksum.
func scanRecords(buf []byte, base int64, emit func(key string, val []byte, ref recordRef)) int64 {
	var off int64
	n := int64(len(buf))
	for {
		if n-off < recHeader {
			return off
		}
		plen := int64(binary.LittleEndian.Uint32(buf[off:]))
		sum := binary.LittleEndian.Uint32(buf[off+4:])
		if plen < 2 || plen > maxPayload || off+recHeader+plen > n {
			return off
		}
		payload := buf[off+recHeader : off+recHeader+plen]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off
		}
		klen := int64(binary.LittleEndian.Uint16(payload))
		if 2+klen > plen {
			return off
		}
		key := string(payload[2 : 2+klen])
		val := payload[2+klen:]
		size := recHeader + plen
		emit(key, val, recordRef{off: base + off, size: size})
		off += size
	}
}

// encodeRecord renders one record: header, then payload.
func encodeRecord(key string, val []byte) []byte {
	plen := 2 + len(key) + len(val)
	rec := make([]byte, recHeader+plen)
	payload := rec[recHeader:]
	binary.LittleEndian.PutUint16(payload, uint16(len(key)))
	copy(payload[2:], key)
	copy(payload[2+len(key):], val)
	binary.LittleEndian.PutUint32(rec, uint32(plen))
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(payload, castagnoli))
	return rec
}

// Get returns the payload stored under key. The record is re-read from
// the log and its checksum re-verified, so a store never serves bytes
// it cannot vouch for.
func (s *FileStore) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if s.failed != nil {
		return nil, false, s.failed
	}
	ref, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, ref.size)
	if n, err := s.f.ReadAt(buf, ref.off); n < len(buf) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, false, fmt.Errorf("store: read %s: %w", s.path, err)
	}
	var val []byte
	found := false
	if n := scanRecords(buf, ref.off, func(k string, v []byte, _ recordRef) {
		if k == key {
			val = v
			found = true
		}
	}); n != ref.size || !found {
		return nil, false, fmt.Errorf("store: record at offset %d of %s is corrupt", ref.off, s.path)
	}
	return val, true, nil
}

// Put appends a record for key. Under FsyncAlways a nil return means
// the record is durable; under the other policies it means the record
// is in the log and will be synced by the flusher or the OS. A failed
// or short append is rolled back by truncating the log to its previous
// end, so a write failure never leaves a torn record for a *later*
// crash to trip on; if even the rollback fails the store marks itself
// failed and every subsequent operation returns that error (the
// Resilient wrapper then degrades and reopens).
func (s *FileStore) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) >= maxKeyLen {
		return fmt.Errorf("store: key length %d outside [1, %d)", len(key), maxKeyLen)
	}
	if 2+len(key)+len(val) > maxPayload {
		return fmt.Errorf("store: payload for key %q exceeds %d bytes", key, maxPayload)
	}
	rec := encodeRecord(key, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	if n, err := s.f.WriteAt(rec, s.size); err != nil || n < len(rec) {
		if err == nil {
			err = io.ErrShortWrite
		}
		err = fmt.Errorf("store: append to %s: %w", s.path, err)
		s.rollbackLocked(err)
		return err
	}
	if s.policy == FsyncAlways {
		if err := s.f.Sync(); err != nil {
			err = fmt.Errorf("store: fsync %s: %w", s.path, err)
			s.rollbackLocked(err)
			return err
		}
	} else {
		s.dirty = true
	}
	if old, ok := s.index[key]; ok {
		s.deadBytes += old.size
	}
	s.index[key] = recordRef{off: s.size, size: int64(len(rec))}
	s.size += int64(len(rec))
	s.maybeCompactLocked()
	return nil
}

// rollbackLocked undoes a failed append by truncating the log back to
// the last acknowledged end. If the truncate itself fails the file may
// hold a torn record, which recovery would handle — but this handle can
// no longer vouch for its own state, so it goes sticky-failed.
func (s *FileStore) rollbackLocked(cause error) {
	if terr := s.f.Truncate(s.size); terr != nil {
		s.failed = fmt.Errorf("store: unusable after failed rollback (%v) of failed append (%w)", terr, cause)
	}
}

// Len returns the number of live keys.
func (s *FileStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats summarizes the store.
func (s *FileStore) Stats() FileStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return FileStats{
		Path:           s.path,
		Records:        len(s.index),
		SizeBytes:      s.size,
		DeadBytes:      s.deadBytes,
		Compactions:    s.compactions.Load(),
		RecoveredBytes: s.recoveredBytes,
	}
}

// Sync forces pending appends to disk regardless of policy.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	if !s.dirty {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", s.path, err)
	}
	s.dirty = false
	return nil
}

// flushLoop is the FsyncInterval background flusher.
func (s *FileStore) flushLoop() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopFlush:
			return
		case <-t.C:
			s.flushOnce()
		}
	}
}

// flushOnce syncs pending appends; a sync failure marks the store
// failed so the next operation surfaces it (the flusher has no caller
// to report to).
func (s *FileStore) flushOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.failed != nil || !s.dirty {
		return
	}
	if err := s.f.Sync(); err != nil {
		s.failed = fmt.Errorf("store: interval fsync %s: %w", s.path, err)
		return
	}
	s.dirty = false
}

// Close stops the flusher, waits out any compaction, syncs pending
// appends, and closes the file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.stopFlush != nil {
		close(s.stopFlush)
		<-s.flushDone
	}
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.failed == nil && s.dirty && s.policy != FsyncNever {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
