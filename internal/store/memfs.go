package store

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// MemFS is an in-memory FS with injectable faults and a crash model,
// built for the store's fault-injection tests (and exported so the
// service layer's degradation tests can reuse it). It tracks, per file,
// which prefix of the content has been made durable by Sync: Crash
// discards everything after that point, which is exactly the state a
// reopening store would find after the machine died with unsynced page
// cache.
//
// Fault hooks are installed with SetWriteHook / SetSyncHook /
// SetRenameHook and may be swapped at any time, including while another
// goroutine is mid-operation; the hooks are read under the FS lock.
type MemFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	writes int // global WriteAt operation counter, for "fail the Nth write" hooks

	// writeHook, when non-nil, intercepts every WriteAt: it receives the
	// file name, the 1-based global write index, and the buffer, and
	// returns how many bytes to actually persist plus the error to
	// report. A short count with a nil error is reported as ErrShortWrite
	// by the File.
	writeHook func(name string, op int, p []byte) (int, error)
	// syncHook, when non-nil, intercepts Sync; a non-nil return leaves
	// the durable prefix unchanged.
	syncHook func(name string) error
	// renameHook, when non-nil, runs before a Rename; a non-nil return
	// aborts the rename (used to simulate a crash mid-compaction).
	renameHook func(oldpath, newpath string) error
	// truncateHook, when non-nil, runs before a Truncate; a non-nil
	// return aborts it (used to fail a rollback and drive the store into
	// its sticky-failed state).
	truncateHook func(name string, size int64) error
}

type memFile struct {
	data   []byte
	synced int // durable prefix length; Crash truncates to this
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// SetWriteHook installs (or, with nil, removes) the WriteAt fault hook.
func (m *MemFS) SetWriteHook(h func(name string, op int, p []byte) (int, error)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeHook = h
}

// SetSyncHook installs (or, with nil, removes) the Sync fault hook.
func (m *MemFS) SetSyncHook(h func(name string) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncHook = h
}

// SetRenameHook installs (or, with nil, removes) the Rename fault hook.
func (m *MemFS) SetRenameHook(h func(oldpath, newpath string) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.renameHook = h
}

// SetTruncateHook installs (or, with nil, removes) the Truncate fault hook.
func (m *MemFS) SetTruncateHook(h func(name string, size int64) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.truncateHook = h
}

// Crash simulates losing power: every file keeps only its durable
// (synced) prefix. Open handles remain usable — a test reopening a
// store after Crash should open fresh handles, matching a restarted
// process.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
}

// FileData returns a copy of name's current content (nil when absent).
func (m *MemFS) FileData(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.data...)
}

// SetFileData replaces name's content with a copy of data and marks all
// of it durable — the way tests materialize an arbitrary crash image.
func (m *MemFS) SetFileData(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
}

// SyncedLen returns how many bytes of name are durable.
func (m *MemFS) SyncedLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return 0
	}
	return f.synced
}

// Exists reports whether name exists.
func (m *MemFS) Exists(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.files[name]
	return ok
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		f = &memFile{}
		m.files[name] = f
	case flag&os.O_TRUNC != 0:
		f.data = nil
		f.synced = 0
	}
	return &memHandle{fs: m, name: name, f: f}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.renameHook != nil {
		if err := m.renameHook(oldpath, newpath); err != nil {
			return err
		}
	}
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	m.files[newpath] = f
	delete(m.files, oldpath)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// memHandle is one open handle. Handles share the memFile, so a rename
// keeps them valid — the same POSIX behavior the compactor relies on.
type memHandle struct {
	fs     *MemFS
	name   string
	f      *memFile
	closed bool
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if off < 0 || off > int64(len(h.f.data)) {
		return 0, fmt.Errorf("store: memfs read at %d beyond size %d: %w", off, len(h.f.data), io.EOF)
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.fs.writes++
	allow, err := len(p), error(nil)
	if h.fs.writeHook != nil {
		allow, err = h.fs.writeHook(h.name, h.fs.writes, p)
		if allow > len(p) {
			allow = len(p)
		}
	}
	end := off + int64(allow)
	if grow := end - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[off:end], p[:allow])
	if err == nil && allow < len(p) {
		err = io.ErrShortWrite
	}
	return allow, err
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if h.fs.syncHook != nil {
		if err := h.fs.syncHook(h.name); err != nil {
			return err
		}
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if h.fs.truncateHook != nil {
		if err := h.fs.truncateHook(h.name, size); err != nil {
			return err
		}
	}
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("store: memfs truncate %d outside [0, %d]", size, len(h.f.data))
	}
	h.f.data = h.f.data[:size]
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	return nil
}

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	return int64(len(h.f.data)), nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
