package store

import (
	"os"
	"sort"
)

// compactSuffix names the temporary file a compaction writes before the
// atomic rename. Open removes a leftover one (crash mid-compaction).
const compactSuffix = ".compact"

// maybeCompactLocked starts a background compaction when the log is
// both big enough to matter and at least half dead. Called with mu held
// for writing.
func (s *FileStore) maybeCompactLocked() {
	if s.compacting || s.size < s.opts.CompactMinBytes || s.deadBytes*2 < s.size {
		return
	}
	s.compacting = true
	s.wg.Add(1)
	//chaselint:owned Close drains it via wg.Wait; the compacting flag makes it unique
	go s.compact()
}

// compact rewrites the live records to a temp file and atomically
// renames it over the log. The long phase — copying the live set — runs
// against a read-locked snapshot while appends continue; the brief
// final phase takes the write lock to copy the appended tail, sync,
// rename, and swap the handle. Every failure path abandons the temp
// file and leaves the store exactly as it was: compaction is an
// optimization and must never be a new way to lose verdicts.
func (s *FileStore) compact() {
	defer s.wg.Done()

	s.mu.RLock()
	if s.closed || s.failed != nil {
		s.mu.RUnlock()
		s.setCompacting(false)
		return
	}
	src := s.f
	snapSize := s.size
	refs := make([]recordRef, 0, len(s.index))
	for _, ref := range s.index {
		refs = append(refs, ref)
	}
	s.mu.RUnlock()
	// Preserve log order so identical live sets compact to identical
	// logs regardless of map iteration.
	sort.Slice(refs, func(i, j int) bool { return refs[i].off < refs[j].off })

	tmpPath := s.path + compactSuffix
	abort := func(tmp File) {
		if tmp != nil {
			tmp.Close() //nolint:errcheck // already abandoning it
		}
		s.fs.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		s.setCompacting(false)
	}
	tmp, err := s.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		abort(nil)
		return
	}
	if _, err := tmp.WriteAt([]byte(magic), 0); err != nil {
		abort(tmp)
		return
	}
	newSize := int64(len(magic))
	newIndex := make(map[string]recordRef, len(refs))
	for _, ref := range refs {
		buf := make([]byte, ref.size)
		// The snapshot region [0, snapSize) is immutable — the store only
		// appends — so reading it without the lock is safe.
		if n, _ := src.ReadAt(buf, ref.off); n < len(buf) {
			abort(tmp)
			return
		}
		ok := false
		scanRecords(buf, newSize, func(key string, _ []byte, nref recordRef) {
			newIndex[key] = nref
			ok = true
		})
		if !ok {
			abort(tmp)
			return
		}
		if _, err := tmp.WriteAt(buf, newSize); err != nil {
			abort(tmp)
			return
		}
		newSize += ref.size
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { s.compacting = false }()
	if s.closed || s.failed != nil {
		tmp.Close()          //nolint:errcheck // already abandoning it
		s.fs.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return
	}
	abortLocked := func() {
		tmp.Close()          //nolint:errcheck // already abandoning it
		s.fs.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
	}
	// Records appended while the live set was copying form a contiguous
	// tail; carry them over verbatim and index them on top.
	var newDead int64
	if tail := s.size - snapSize; tail > 0 {
		buf := make([]byte, tail)
		if n, _ := src.ReadAt(buf, snapSize); n < len(buf) {
			abortLocked()
			return
		}
		if _, err := tmp.WriteAt(buf, newSize); err != nil {
			abortLocked()
			return
		}
		if n := scanRecords(buf, newSize, func(key string, _ []byte, nref recordRef) {
			if old, ok := newIndex[key]; ok {
				newDead += old.size
			}
			newIndex[key] = nref
		}); n != tail {
			abortLocked()
			return
		}
		newSize += tail
	}
	// The rename must never travel ahead of the data: sync the temp
	// regardless of policy.
	if err := tmp.Sync(); err != nil {
		abortLocked()
		return
	}
	if err := s.fs.Rename(tmpPath, s.path); err != nil {
		abortLocked()
		return
	}
	old := s.f
	s.f = tmp
	s.size = newSize
	s.index = newIndex
	s.deadBytes = newDead
	s.dirty = false
	s.compactions.Add(1)
	old.Close() //nolint:errcheck // the log it held was just replaced
}

// setCompacting clears (or sets) the flag outside a held lock.
func (s *FileStore) setCompacting(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compacting = v
}
