package chaseterm

import (
	"testing"
)

func TestCoreFacts(t *testing.T) {
	rules := MustParseRules(`emp(N, DN) -> works(E, D), empName(E, N), deptName(D, DN).
dept(DN, MN) -> deptName(D, DN), mgr(D, M), empName(M, MN).
mgr(D, M) -> works(M, D).`)
	db := MustParseDatabase(`emp(carol, toys). dept(toys, carol).`)
	res, err := RunChase(db, rules, Restricted, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Terminated {
		t.Fatal("chase did not terminate")
	}
	full := len(res.Facts())
	core, removed := res.CoreFacts()
	if removed == 0 {
		t.Fatalf("expected folding: carol's employment row duplicates her manager facts (full=%d)", full)
	}
	if len(core)+removed != full {
		t.Errorf("core=%d removed=%d full=%d", len(core), removed, full)
	}
}

func TestCoreFactsNoFold(t *testing.T) {
	rules := MustParseRules(`p(X) -> q(X,Y).`)
	db := MustParseDatabase(`p(a).`)
	res, err := RunChase(db, rules, Restricted, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	core, removed := res.CoreFacts()
	if removed != 0 || len(core) != 2 {
		t.Errorf("core=%v removed=%d", core, removed)
	}
}

func TestExploreRestrictedSequencesFacade(t *testing.T) {
	rules := MustParseRules(`r(X,Y) -> r(Y,Z).
r(X,Y) -> r(Y,X).`)
	db := MustParseDatabase(`r(a,b).`)
	res, err := ExploreRestrictedSequences(db, rules, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("no terminating sequence found: %+v", res)
	}
	if len(res.Trace) != 1 || res.Trace[0] != 1 {
		t.Errorf("trace: %v", res.Trace)
	}
	// FIFO (fair) restricted run on the same input diverges — the pair of
	// results is the ∀/∃-sequence separation at the public API level.
	run, err := RunChase(db, rules, Restricted, ChaseOptions{MaxTriggers: 500})
	if err != nil {
		t.Fatal(err)
	}
	if run.Outcome == Terminated {
		t.Error("FIFO restricted run should diverge on this input")
	}
}

func TestDecideTerminationOnDatabase(t *testing.T) {
	rules := MustParseRules(`p(X,Y) -> p(Y,Z).`)
	feeds := MustParseDatabase(`p(a,b).`)
	starved := MustParseDatabase(`q(a).`)

	v, err := DecideTerminationOnDatabase(feeds, rules, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != No || v.Method != "critical-weak-acyclicity(fixed-db)" {
		t.Errorf("feeds: %v via %s", v.Terminates, v.Method)
	}
	v, err = DecideTerminationOnDatabase(starved, rules, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != Yes {
		t.Errorf("starved: %v", v.Terminates)
	}
	// Oblivious variant on the starved database also terminates.
	v, err = DecideTerminationOnDatabase(starved, rules, Oblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != Yes {
		t.Errorf("starved/o: %v", v.Terminates)
	}
	// Restricted: transfers the Yes.
	v, err = DecideTerminationOnDatabase(starved, rules, Restricted)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != Yes {
		t.Errorf("starved/r: %v", v.Terminates)
	}
	// Guarded dispatch.
	g := MustParseRules(`g(X,Y), gate(X) -> g(Y,Z), gate(Y).`)
	armed := MustParseDatabase(`g(a,a). gate(a).`)
	v, err = DecideTerminationOnDatabase(armed, g, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != No || v.Method != "guarded-forest(fixed-db)" {
		t.Errorf("armed: %v via %s", v.Terminates, v.Method)
	}
	// General fallback: saturating non-guarded set.
	gen := MustParseRules(`e(X,Y), f(Y,Z) -> m(X,Z).`)
	v, err = DecideTerminationOnDatabase(MustParseDatabase(`e(a,b). f(b,c).`), gen, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != Yes || v.Method != "saturation(fixed-db)" {
		t.Errorf("general: %v via %s", v.Terminates, v.Method)
	}
}

func TestCheckAcyclicity(t *testing.T) {
	// RA fails, WA holds: the dropped-frontier rule.
	rep := CheckAcyclicity(MustParseRules(`p(X,Y) -> p(X,Z).`))
	if rep.RichlyAcyclic || !rep.WeaklyAcyclic || !rep.JointlyAcyclic {
		t.Errorf("report: %+v", rep)
	}
	if rep.RAWitness == "" {
		t.Error("missing RA witness")
	}
	if rep.WAWitness != "" {
		t.Error("unexpected WA witness on acyclic set")
	}
	// All fail on Example 2.
	rep = CheckAcyclicity(MustParseRules(`p(X,Y) -> p(Y,Z).`))
	if rep.RichlyAcyclic || rep.WeaklyAcyclic || rep.JointlyAcyclic {
		t.Errorf("report: %+v", rep)
	}
	// JA holds where WA fails.
	rep = CheckAcyclicity(MustParseRules("p(X) -> q(X,Y).\nq(X,Y), q(Y,X) -> p(Y)."))
	if rep.WeaklyAcyclic || !rep.JointlyAcyclic {
		t.Errorf("report: %+v", rep)
	}
}

func TestDecideSimpleLinearFastPathMethod(t *testing.T) {
	rules := MustParseRules(`p(X,Y) -> q(Y,Z).`)
	v, err := DecideTermination(rules, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != "weak-acyclicity(SL)" {
		t.Errorf("method: %s", v.Method)
	}
	// With constants the shape decider takes over.
	rules2 := MustParseRules(`p(X,0) -> q(X,Z).`)
	v, err = DecideTermination(rules2, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != "critical-weak-acyclicity" {
		t.Errorf("method with constants: %s", v.Method)
	}
}
