package chaseterm

import (
	"regexp"
	"sort"
	"testing"
)

func TestFingerprintStable(t *testing.T) {
	src := `
		person(X) -> hasFather(X,Y), person(Y).
		hasFather(X,Y) -> person(Y).
	`
	a := MustParseRules(src).Fingerprint()
	b := MustParseRules(src).Fingerprint()
	if a != b {
		t.Fatalf("fingerprint not stable across parses: %s vs %s", a, b)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(a) {
		t.Fatalf("fingerprint is not a sha256 hex digest: %q", a)
	}
}

func TestFingerprintInvariantUnderRuleReordering(t *testing.T) {
	a := MustParseRules(`
		professor(X) -> teaches(X,C).
		teaches(X,C) -> course(C).
		advises(X,Y) -> professor(X).
	`)
	b := MustParseRules(`
		advises(X,Y) -> professor(X).
		professor(X) -> teaches(X,C).
		teaches(X,C) -> course(C).
	`)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("reordered-but-equal rule sets got different fingerprints:\n%s\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
}

func TestFingerprintInvariantUnderVariableRenaming(t *testing.T) {
	a := MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	b := MustParseRules(`person(Who) -> hasFather(Who,Dad), person(Dad).`)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("alpha-equivalent rule sets got different fingerprints")
	}
}

func TestFingerprintSeparatesDistinctSets(t *testing.T) {
	cases := []string{
		`person(X) -> hasFather(X,Y), person(Y).`,
		`person(X) -> hasFather(X,Y).`,
		`person(X) -> hasFather(Y,X), person(Y).`, // argument order differs
		`p(X,X) -> q(X).`,
		`p(X,Y) -> q(X).`,
		`p('V0',X) -> q(X).`, // constant spelled like a canonical variable
		`p(V9,X) -> q(X).`,   // V9 is a variable here
	}
	seen := make(map[string]string)
	for _, src := range cases {
		fp := MustParseRules(src).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("distinct rule sets share a fingerprint:\n%s\n%s", prev, src)
		}
		seen[fp] = src
	}
}

// TestPredicatesDeterministic guards the inputs feeding the fingerprint
// and the service cache key: Predicates() must come out sorted and
// identical across parses regardless of rule order.
func TestPredicatesDeterministic(t *testing.T) {
	a := MustParseRules(`
		gate(X,Y), live(X) -> out(Y,Z), live(Z).
		out(Y,Z) -> gate(Y,Z).
	`)
	b := MustParseRules(`
		out(Y,Z) -> gate(Y,Z).
		gate(X,Y), live(X) -> out(Y,Z), live(Z).
	`)
	pa, pb := a.Predicates(), b.Predicates()
	if !sort.StringsAreSorted(pa) {
		t.Errorf("Predicates() not sorted: %v", pa)
	}
	if len(pa) != len(pb) {
		t.Fatalf("predicate lists differ: %v vs %v", pa, pb)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("predicate lists differ at %d: %v vs %v", i, pa, pb)
		}
	}
}

// TestVerdictDeterministic re-decides the same set from fresh parses and
// requires byte-identical verdict details (method, witness, search
// space) — these strings are surfaced by the service and must not leak
// map-iteration order.
func TestVerdictDeterministic(t *testing.T) {
	srcs := []string{
		`person(X) -> hasFather(X,Y), person(Y).`,
		`gate(X,Y), live(X) -> out(Y,Z), live(Z).
		 out(Y,Z) -> gate(Y,Z).`,
	}
	for _, src := range srcs {
		for _, v := range []Variant{Oblivious, SemiOblivious} {
			first, err := DecideTermination(MustParseRules(src), v)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				again, err := DecideTermination(MustParseRules(src), v)
				if err != nil {
					t.Fatal(err)
				}
				if *again != *first {
					t.Errorf("verdict for %q (%s) not deterministic:\n%+v\n%+v", src, v, first, again)
				}
			}
		}
	}
}
