package chaseterm

import (
	"context"
	"testing"

	"chaseterm/internal/obs"
)

// TestReportTimings pins the observability contract of Analyze: Timings
// is always populated, stages the request ran are nonzero, their sum
// never exceeds Total, and chase reports carry the full engine counter
// set (including TriggersEnqueued, which the public ChaseStats lacks).
func TestReportTimings(t *testing.T) {
	rules := MustParseRules(`e(X,Y) -> e(Y,Z).`)
	ctx := context.Background()
	var an Analyzer

	t.Run("classify", func(t *testing.T) {
		rep, err := an.Analyze(ctx, NewRequest(AnalyzeClassify, rules))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Timings.Total <= 0 {
			t.Errorf("Timings.Total = %v, want > 0", rep.Timings.Total)
		}
		if rep.Timings.Decide != 0 || rep.Timings.Chase != 0 {
			t.Errorf("classify ran no decide/chase stage, got %+v", rep.Timings)
		}
		if rep.Engine != nil {
			t.Error("classify report should have no engine stats")
		}
	})

	t.Run("decide", func(t *testing.T) {
		rep, err := an.Analyze(ctx, NewRequest(AnalyzeDecide, rules))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Timings.Decide <= 0 {
			t.Errorf("Timings.Decide = %v, want > 0", rep.Timings.Decide)
		}
		if sum := rep.Timings.Classify + rep.Timings.Acyclicity + rep.Timings.Decide +
			rep.Timings.Chase + rep.Timings.Render; sum > rep.Timings.Total {
			t.Errorf("stage sum %v exceeds Total %v", sum, rep.Timings.Total)
		}
	})

	t.Run("chase", func(t *testing.T) {
		rep, err := an.Analyze(ctx, NewRequest(AnalyzeChase, rules,
			WithChaseBudgets(ChaseOptions{MaxTriggers: 50, MaxFacts: 50}), WithFacts()))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Timings.Chase <= 0 {
			t.Errorf("Timings.Chase = %v, want > 0", rep.Timings.Chase)
		}
		if rep.Engine == nil {
			t.Fatal("chase report missing engine stats")
		}
		if rep.Engine.TriggersApplied != rep.Chase.Stats.TriggersApplied {
			t.Errorf("Engine.TriggersApplied = %d, Stats says %d",
				rep.Engine.TriggersApplied, rep.Chase.Stats.TriggersApplied)
		}
		if rep.Engine.TriggersEnqueued < rep.Engine.TriggersApplied {
			t.Errorf("TriggersEnqueued %d < TriggersApplied %d",
				rep.Engine.TriggersEnqueued, rep.Engine.TriggersApplied)
		}
	})
}

// TestAnalyzeRecordsSpans checks that a context-carried obs.Trace picks
// up the decider and chase stages.
func TestAnalyzeRecordsSpans(t *testing.T) {
	rules := MustParseRules(`p(X) -> q(X).`)
	var an Analyzer

	tr := new(obs.Trace)
	ctx := obs.NewContext(context.Background(), tr)
	if _, err := an.Analyze(ctx, NewRequest(AnalyzeDecide, rules)); err != nil {
		t.Fatal(err)
	}
	if tr.Get(obs.SpanDecider) <= 0 {
		t.Errorf("decider span not recorded: %v", tr.Get(obs.SpanDecider))
	}
	if tr.Get(obs.SpanChase) != 0 {
		t.Errorf("decide request recorded a chase span: %v", tr.Get(obs.SpanChase))
	}

	tr.Reset()
	if _, err := an.Analyze(ctx, NewRequest(AnalyzeChase, rules, WithFacts())); err != nil {
		t.Fatal(err)
	}
	if tr.Get(obs.SpanChase) <= 0 {
		t.Errorf("chase span not recorded: %v", tr.Get(obs.SpanChase))
	}
	if tr.Get(obs.SpanRender) <= 0 {
		t.Errorf("render span not recorded despite WithFacts: %v", tr.Get(obs.SpanRender))
	}

	// No trace on the context: must still work (nil-safe path).
	if _, err := an.Analyze(context.Background(), NewRequest(AnalyzeDecide, rules)); err != nil {
		t.Fatal(err)
	}
}
