package chaseterm

import (
	"context"
	"fmt"
	"time"

	"chaseterm/internal/obs"
)

// AnalysisKind selects what an Analyzer computes for a Request.
type AnalysisKind int

const (
	// AnalyzeClassify reports the syntactic class and schema of the rule
	// set (Report.Class, NumRules, MaxArity, Predicates).
	AnalyzeClassify AnalysisKind = iota
	// AnalyzeDecide decides chase termination (Report.Verdict): for every
	// database when no database is attached, or for the attached database
	// only (WithDatabase — the fixed-database variant of the problem).
	AnalyzeDecide
	// AnalyzeChase runs a bounded chase (Report.Chase) over the attached
	// database, or over the critical instance I*(Σ) when none is attached.
	AnalyzeChase
	// AnalyzeAcyclicity evaluates the positional acyclicity criteria
	// (Report.Acyclicity).
	AnalyzeAcyclicity
)

func (k AnalysisKind) String() string {
	switch k {
	case AnalyzeClassify:
		return "classify"
	case AnalyzeDecide:
		return "decide"
	case AnalyzeChase:
		return "chase"
	case AnalyzeAcyclicity:
		return "acyclicity"
	default:
		return fmt.Sprintf("AnalysisKind(%d)", int(k))
	}
}

// ParseAnalysisKind accepts the lower-case kind names used on the wire:
// "classify", "decide", "chase", "acyclicity".
func ParseAnalysisKind(s string) (AnalysisKind, error) {
	switch s {
	case "classify":
		return AnalyzeClassify, nil
	case "decide":
		return AnalyzeDecide, nil
	case "chase":
		return AnalyzeChase, nil
	case "acyclicity":
		return AnalyzeAcyclicity, nil
	default:
		return 0, fmt.Errorf("chaseterm: unknown analysis kind %q", s)
	}
}

// Request is one analysis job for an Analyzer: a kind, a rule set, and
// options. Build it with NewRequest; the zero value is not valid.
//
// The option set composes across kinds: WithDatabase turns AnalyzeDecide
// into the fixed-database decision and seeds AnalyzeChase (instead of
// the critical instance); WithAcyclicity attaches the positional
// acyclicity report to any request; budgets apply to the kinds that run
// the corresponding procedure and are ignored otherwise.
type Request struct {
	// Kind selects the analysis.
	Kind AnalysisKind
	// Rules is the rule set under analysis; required.
	Rules *RuleSet

	// variant is meaningful only when variantSet; the split keeps the
	// SemiOblivious default honest even for struct-literal Requests that
	// bypass NewRequest (the Variant zero value is Oblivious, which is a
	// genuinely different decision problem).
	variant    Variant
	variantSet bool
	// databaseSet distinguishes WithDatabase(nil) — a caller bug that
	// must fail loudly — from no WithDatabase at all.
	database       *Database
	databaseSet    bool
	decideOpts     DecideOptions
	chaseOpts      ChaseOptions
	renderFacts    bool
	withAcyclicity bool
	sink           ChaseSink
	// parallelism, when > 0, is the default match-worker count for every
	// chase the request runs (WithParallelism); explicit Workers fields
	// in the budget options win.
	parallelism int
	// portfolio, when set, routes the all-instance AnalyzeDecide through
	// the termination portfolio (WithPortfolio).
	portfolio *PortfolioOptions
}

// Variant returns the chase variant the request targets (default
// SemiOblivious, the variant the paper's exact procedures are stated
// for).
func (r Request) Variant() Variant {
	if !r.variantSet {
		return SemiOblivious
	}
	return r.variant
}

// Database returns the attached database, or nil.
func (r Request) Database() *Database { return r.database }

// RequestOption configures a Request; see NewRequest.
type RequestOption func(*Request)

// WithVariant selects the chase variant (default SemiOblivious).
func WithVariant(v Variant) RequestOption {
	return func(r *Request) {
		r.variant = v
		r.variantSet = true
	}
}

// WithDatabase attaches a database: AnalyzeDecide then decides
// termination of the chase of this database only (the fixed-database
// problem), and AnalyzeChase chases it instead of the critical
// instance.
func WithDatabase(db *Database) RequestOption {
	return func(r *Request) {
		r.database = db
		r.databaseSet = true
	}
}

// WithDecideBudgets bounds the decision procedures of AnalyzeDecide
// (zero fields mean the library defaults).
func WithDecideBudgets(opt DecideOptions) RequestOption {
	return func(r *Request) { r.decideOpts = opt }
}

// WithChaseBudgets bounds the chase run of AnalyzeChase (zero fields
// mean the library defaults).
func WithChaseBudgets(opt ChaseOptions) RequestOption {
	return func(r *Request) { r.chaseOpts = opt }
}

// WithFacts renders the final instance eagerly inside Analyze, so the
// report's chase result has its facts materialized by the time the call
// returns (they are rendered lazily on first use otherwise). Callers
// that account for rendering cost — like the analysis service, which
// charges it against a worker slot — opt in with this.
func WithFacts() RequestOption {
	return func(r *Request) { r.renderFacts = true }
}

// WithChaseSink streams the facts an AnalyzeChase run derives through
// sink, in batches, while the run is in progress — see ChaseSink for
// the delivery contract. Other kinds ignore the sink. The final Report
// still carries the complete ChaseResult; combine with a bounded
// budget or a cancelable context to stop a diverging run.
func WithChaseSink(sink ChaseSink) RequestOption {
	return func(r *Request) { r.sink = sink }
}

// WithParallelism sets the match-worker count for every chase the
// request runs: the AnalyzeChase engine itself and the bounded
// critical-instance chases inside AnalyzeDecide (the oracle and
// saturation rungs). The parallel engine splits each generation's
// matching across n goroutines while fact application stays
// single-writer, so outcomes, statistics, and the final instance are
// bit-identical to a sequential run at every n. Values below 2 mean
// sequential. An explicit Workers in WithChaseBudgets or OracleWorkers
// in WithDecideBudgets takes precedence.
func WithParallelism(n int) RequestOption {
	return func(r *Request) { r.parallelism = n }
}

// WithAcyclicity attaches the positional acyclicity report
// (Report.Acyclicity) to the request, whatever its kind — e.g. one
// AnalyzeDecide request can carry both the exact verdict and the
// sufficient-condition ladder.
func WithAcyclicity() RequestOption {
	return func(r *Request) { r.withAcyclicity = true }
}

// NewRequest builds an analysis request for the rule set.
func NewRequest(kind AnalysisKind, rules *RuleSet, opts ...RequestOption) Request {
	r := Request{Kind: kind, Rules: rules}
	for _, o := range opts {
		o(&r)
	}
	return r
}

// Timings breaks one Analyze call's wall time into its stages. Stages
// the request did not run stay zero; Total covers the whole call, so
// Total minus the sum of the stages is the (small) dispatch overhead.
type Timings struct {
	// Classify covers the syntactic pass: class, schema, fingerprint.
	Classify time.Duration
	// Acyclicity covers the positional-criteria evaluation.
	Acyclicity time.Duration
	// Decide covers the termination decision procedure.
	Decide time.Duration
	// Chase covers the chase run itself.
	Chase time.Duration
	// Render covers materializing the final instance (WithFacts only;
	// lazy rendering after Analyze returns is not accounted here).
	Render time.Duration
	// Total is the wall time of the Analyze call.
	Total time.Duration
}

// EngineStats aggregates the chase engine's counters for a run. It is
// the superset of ChaseStats that also carries TriggersEnqueued — the
// scheduler-side count the public ChaseStats predates — so the
// observability layer reports every counter the engine keeps.
type EngineStats struct {
	InitialFacts      int
	FactsAdded        int
	TriggersApplied   int
	TriggersNoop      int
	TriggersSatisfied int
	TriggersEnqueued  int
	MaxTermDepth      int
}

// Report is the unified result of Analyzer.Analyze. The classification
// fields (Class, NumRules, MaxArity, Predicates, Fingerprint) are
// always populated — classification is a cheap syntactic pass and every
// other analysis needs it anyway; the remaining fields are populated
// according to the request: Verdict for AnalyzeDecide, Chase for
// AnalyzeChase, Acyclicity for AnalyzeAcyclicity or WithAcyclicity.
type Report struct {
	// Kind echoes the request.
	Kind AnalysisKind
	// Fingerprint is the canonical content address of the rule set
	// (RuleSet.Fingerprint) — the cache key of the analysis service.
	Fingerprint string

	// Classification of the rule set (always populated).
	Class      Class
	NumRules   int
	MaxArity   int
	Predicates []string

	// Verdict is the termination decision (AnalyzeDecide).
	Verdict *Verdict
	// Chase is the chase run result (AnalyzeChase). On cancellation it
	// holds the partial result — outcome Canceled, statistics up to the
	// stopping point — alongside the returned context error.
	Chase *ChaseResult
	// Acyclicity is the positional-criteria report (AnalyzeAcyclicity or
	// WithAcyclicity).
	Acyclicity *AcyclicityReport
	// Portfolio is the provenance of a portfolio decision — which rung
	// decided and the per-rung trace (AnalyzeDecide with WithPortfolio,
	// all-instance only).
	Portfolio *PortfolioReport

	// Timings breaks the call's wall time into stages; always populated.
	Timings Timings
	// Engine aggregates the engine counters of a chase run
	// (AnalyzeChase), including the partial counters of a canceled run.
	Engine *EngineStats
}

// Analyzer is the single entry point to every analysis of the library:
// classification, all-instance and fixed-database termination
// decisions, bounded chase runs, and the positional acyclicity
// criteria, all behind one context-first call. The zero value is ready
// to use and Analyze is safe for concurrent use.
//
//	var an chaseterm.Analyzer
//	rep, err := an.Analyze(ctx, chaseterm.NewRequest(
//		chaseterm.AnalyzeDecide, rules,
//		chaseterm.WithVariant(chaseterm.SemiOblivious),
//	))
//
// The legacy free functions (DecideTermination, RunChase,
// CheckAcyclicity, …) are thin wrappers over this type and remain
// supported; new code should call Analyze.
type Analyzer struct{}

// Analyze runs the request and returns its report. The context is
// honored cooperatively by every long-running procedure (deciders poll
// it at fixpoint/worklist boundaries, the chase engine every ~1024
// trigger applications). For AnalyzeChase, cancellation returns the
// partial report together with ctx.Err(); every other kind returns a
// nil report with the context error.
// Analyze also observes the request: the report's Timings section is
// always populated, and when the context carries an obs.Trace (the
// analysis service threads one through every job), the decider, chase,
// and render stages are additionally recorded as spans on it.
func (a Analyzer) Analyze(ctx context.Context, req Request) (*Report, error) {
	start := time.Now()
	rep, err := a.analyze(ctx, req)
	if rep != nil {
		rep.Timings.Total = time.Since(start)
	}
	return rep, err
}

func (Analyzer) analyze(ctx context.Context, req Request) (*Report, error) {
	if req.Rules == nil {
		return nil, fmt.Errorf("chaseterm: analysis request has no rule set")
	}
	if req.databaseSet && req.database == nil {
		// A nil database is a caller bug, not "no database": silently
		// falling back to the all-instance / critical-instance behavior
		// would answer a different question.
		return nil, fmt.Errorf("chaseterm: analysis request has a nil database")
	}
	if req.parallelism > 0 {
		if req.chaseOpts.Workers == 0 {
			req.chaseOpts.Workers = req.parallelism
		}
		if req.decideOpts.OracleWorkers == 0 {
			req.decideOpts.OracleWorkers = req.parallelism
		}
	}
	tr := obs.FromContext(ctx) // nil-safe: Add on a nil trace is a no-op
	stage := time.Now()
	rep := &Report{
		Kind:        req.Kind,
		Fingerprint: req.Rules.Fingerprint(),
		Class:       req.Rules.Classify(),
		NumRules:    req.Rules.NumRules(),
		MaxArity:    req.Rules.MaxArity(),
		Predicates:  req.Rules.Predicates(),
	}
	rep.Timings.Classify = time.Since(stage)
	if req.withAcyclicity || req.Kind == AnalyzeAcyclicity {
		stage = time.Now()
		acyc := checkAcyclicity(req.Rules)
		rep.Acyclicity = &acyc
		rep.Timings.Acyclicity = time.Since(stage)
	}
	switch req.Kind {
	case AnalyzeClassify, AnalyzeAcyclicity:
		return rep, nil
	case AnalyzeDecide:
		var verdict *Verdict
		var err error
		stage = time.Now()
		switch {
		case req.database != nil:
			verdict, err = decideOnDatabase(ctx, req.database, req.Rules, req.Variant(), req.decideOpts)
		case req.portfolio != nil:
			verdict, rep.Portfolio, err = decidePortfolio(ctx, req.Rules, req.Variant(), req.decideOpts, *req.portfolio)
		default:
			verdict, err = decideTermination(ctx, req.Rules, req.Variant(), req.decideOpts)
		}
		rep.Timings.Decide = time.Since(stage)
		tr.Add(obs.SpanDecider, rep.Timings.Decide)
		if err != nil {
			return nil, err
		}
		rep.Verdict = verdict
		return rep, nil
	case AnalyzeChase:
		db := req.database
		if db == nil {
			db = CriticalDatabase(req.Rules)
		}
		stage = time.Now()
		res, err := runChase(ctx, db, req.Rules, req.Variant(), req.chaseOpts, req.sink)
		rep.Timings.Chase = time.Since(stage)
		tr.Add(obs.SpanChase, rep.Timings.Chase)
		if res == nil {
			return nil, err
		}
		if err == nil && req.renderFacts {
			stage = time.Now()
			res.Facts()
			rep.Timings.Render = time.Since(stage)
			tr.Add(obs.SpanRender, rep.Timings.Render)
		}
		rep.Chase = res
		engine := res.engine
		rep.Engine = &engine
		// err is non-nil exactly when the run was canceled; the partial
		// report still carries the stats gathered so far.
		return rep, err
	default:
		return nil, fmt.Errorf("chaseterm: unknown analysis kind %v", req.Kind)
	}
}
