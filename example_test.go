package chaseterm_test

import (
	"context"
	"fmt"

	"chaseterm"
)

// The unified entry point: one Analyze call decides termination and
// reports the rule set's class and fingerprinted identity in one
// Report.
func ExampleAnalyzer_Analyze() {
	var analyzer chaseterm.Analyzer
	rules := chaseterm.MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	rep, _ := analyzer.Analyze(context.Background(), chaseterm.NewRequest(
		chaseterm.AnalyzeDecide, rules,
		chaseterm.WithVariant(chaseterm.SemiOblivious),
	))
	fmt.Println(rep.Class)
	fmt.Println(rep.Verdict.Terminates)
	// Output:
	// simple-linear
	// non-terminating
}

// Options compose: attaching a database turns the decision into the
// fixed-database problem, and WithAcyclicity rides the positional
// criteria along any request.
func ExampleAnalyzer_Analyze_composed() {
	var analyzer chaseterm.Analyzer
	rules := chaseterm.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	db := chaseterm.MustParseDatabase(`q(a).`) // no p-facts: inert
	rep, _ := analyzer.Analyze(context.Background(), chaseterm.NewRequest(
		chaseterm.AnalyzeDecide, rules,
		chaseterm.WithDatabase(db),
		chaseterm.WithAcyclicity(),
	))
	fmt.Println("on this database:", rep.Verdict.Terminates)
	fmt.Println("weakly acyclic:  ", rep.Acyclicity.WeaklyAcyclic)
	// Output:
	// on this database: terminating
	// weakly acyclic:   false
}

// A chase run through the Analyzer: the report carries the full
// ChaseResult, so queries over the universal model work as before.
func ExampleAnalyzer_Analyze_chase() {
	var analyzer chaseterm.Analyzer
	rules := chaseterm.MustParseRules(`advises(X,Y) -> professor(X).`)
	db := chaseterm.MustParseDatabase(`advises(turing, ada).`)
	rep, _ := analyzer.Analyze(context.Background(), chaseterm.NewRequest(
		chaseterm.AnalyzeChase, rules,
		chaseterm.WithDatabase(db),
		chaseterm.WithVariant(chaseterm.Restricted),
	))
	fmt.Println(rep.Chase.Outcome)
	profs, _ := rep.Chase.Query(`professor(P)`, "P")
	fmt.Println(profs)
	// Output:
	// terminated
	// [[turing]]
}

// The termination portfolio: WithPortfolio climbs the ladder of cheap
// sound criteria before touching the exact deciders, and the report
// says which rung decided. A weakly-acyclic rule set never reaches the
// PSPACE/2EXPTIME procedures.
func ExampleAnalyzer_Analyze_portfolio() {
	var analyzer chaseterm.Analyzer
	rules := chaseterm.MustParseRules(`
		professor(X) -> teaches(X,C).
		teaches(X,C) -> course(C).
	`)
	rep, _ := analyzer.Analyze(context.Background(), chaseterm.NewRequest(
		chaseterm.AnalyzeDecide, rules,
		chaseterm.WithVariant(chaseterm.SemiOblivious),
		chaseterm.WithPortfolio(chaseterm.PortfolioOptions{}),
	))
	fmt.Println(rep.Verdict.Terminates)
	fmt.Println("decided by:", rep.Portfolio.DecidedBy)
	// Output:
	// terminating
	// decided by: weak-acyclicity
}

// The paper's Example 1: deciding, for every database at once, that the
// chase cannot terminate.
func ExampleDecideTermination() {
	rules := chaseterm.MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	v, _ := chaseterm.DecideTermination(rules, chaseterm.SemiOblivious)
	fmt.Println(v.Terminates)
	fmt.Println(v.Method)
	// Output:
	// non-terminating
	// weak-acyclicity(SL)
}

// The oblivious and semi-oblivious chase can disagree: dropping the
// frontier variable Y makes every new atom a new oblivious trigger while
// the semi-oblivious chase fires once per X.
func ExampleDecideTermination_variantsDiffer() {
	rules := chaseterm.MustParseRules(`p(X,Y) -> p(X,Z).`)
	o, _ := chaseterm.DecideTermination(rules, chaseterm.Oblivious)
	so, _ := chaseterm.DecideTermination(rules, chaseterm.SemiOblivious)
	fmt.Println("oblivious:     ", o.Terminates)
	fmt.Println("semi-oblivious:", so.Terminates)
	// Output:
	// oblivious:      non-terminating
	// semi-oblivious: terminating
}

// Termination on one concrete database can hold even when all-instance
// termination fails: a database that never feeds the dangerous rule is
// inert.
func ExampleDecideTerminationOnDatabase() {
	rules := chaseterm.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	db := chaseterm.MustParseDatabase(`q(a).`) // no p-facts
	v, _ := chaseterm.DecideTerminationOnDatabase(db, rules, chaseterm.SemiOblivious)
	fmt.Println(v.Terminates)
	// Output:
	// terminating
}

// Running the restricted chase to saturation and asking a certain-answer
// query over the universal model.
func ExampleRunChase() {
	rules := chaseterm.MustParseRules(`
advises(X,Y) -> professor(X).
professor(X) -> teaches(X,C).
`)
	db := chaseterm.MustParseDatabase(`advises(turing, ada). teaches(church, logic101).`)
	res, _ := chaseterm.RunChase(db, rules, chaseterm.Restricted, chaseterm.ChaseOptions{})
	fmt.Println(res.Outcome)

	profs, _ := res.Query(`professor(P)`, "P")
	fmt.Println(profs)

	// turing teaches only an anonymous course, so (P,C) certain answers
	// name church alone.
	pairs, _ := res.Query(`teaches(P,C)`, "P", "C")
	fmt.Println(pairs)
	// Output:
	// terminated
	// [[turing]]
	// [[church logic101]]
}

// The looping operator turns an entailment question into a termination
// question: the transformed rules diverge exactly when the goal is
// entailed.
func ExampleLoopEntailment() {
	inst := chaseterm.EntailmentInstance{
		Rules: chaseterm.MustParseRules(`edge(X,Y), reach(X) -> reach(Y).`),
		DB:    chaseterm.MustParseDatabase(`edge(a,b). reach(a).`),
		Goal:  "reach(b)",
	}
	looped, _ := chaseterm.LoopEntailment(inst)
	v, _ := chaseterm.DecideTermination(looped, chaseterm.SemiOblivious)
	fmt.Println("entailed:", v.Terminates == chaseterm.No)
	// Output:
	// entailed: true
}

// Classifying rule sets into the paper's classes.
func ExampleRuleSet_Classify() {
	for _, src := range []string{
		`p(X,Y) -> q(Y,Z).`,
		`p(X,X) -> q(X).`,
		`g(X,Y), s(Y) -> t(X).`,
		`a(X), b(Y) -> c(X,Y).`,
	} {
		rules := chaseterm.MustParseRules(src)
		fmt.Println(rules.Classify())
	}
	// Output:
	// simple-linear
	// linear
	// guarded
	// general
}

// The positional acyclicity ladder: each criterion recognizes more
// terminating sets than the previous one (and the exact deciders all of
// them).
func ExampleCheckAcyclicity() {
	rules := chaseterm.MustParseRules("p(X) -> q(X,Y).\nq(X,Y), q(Y,X) -> p(Y).")
	rep := chaseterm.CheckAcyclicity(rules)
	fmt.Println("weakly acyclic: ", rep.WeaklyAcyclic)
	fmt.Println("jointly acyclic:", rep.JointlyAcyclic)
	// Output:
	// weakly acyclic:  false
	// jointly acyclic: true
}

// Searching the restricted-chase sequence space: some sequence terminates
// although the fair FIFO run diverges (the ∀/∃-sequence gap of the paper's
// Section 2).
func ExampleExploreRestrictedSequences() {
	rules := chaseterm.MustParseRules(`r(X,Y) -> r(Y,Z).
r(X,Y) -> r(Y,X).`)
	db := chaseterm.MustParseDatabase(`r(a,b).`)
	res, _ := chaseterm.ExploreRestrictedSequences(db, rules, chaseterm.ExploreOptions{})
	fmt.Println("terminating sequence found:", res.Found)
	fmt.Println("apply rule:", res.Trace)
	// Output:
	// terminating sequence found: true
	// apply rule: [1]
}
