package chaseterm_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"chaseterm"
)

var an chaseterm.Analyzer

func TestAnalyzeClassify(t *testing.T) {
	rules := chaseterm.MustParseRules(`gate(X,Y), live(X) -> out(Y,Z), live(Z).
	                                   out(Y,Z) -> gate(Y,Z).`)
	rep, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeClassify, rules))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != chaseterm.AnalyzeClassify || rep.Class != chaseterm.Guarded {
		t.Errorf("classify report: kind %v class %v", rep.Kind, rep.Class)
	}
	if rep.NumRules != 2 || rep.MaxArity != 2 {
		t.Errorf("schema: %d rules, arity %d", rep.NumRules, rep.MaxArity)
	}
	if want := []string{"gate/2", "live/1", "out/2"}; !reflect.DeepEqual(rep.Predicates, want) {
		t.Errorf("predicates %v, want %v", rep.Predicates, want)
	}
	if rep.Fingerprint != rules.Fingerprint() || len(rep.Fingerprint) != 64 {
		t.Errorf("fingerprint %q", rep.Fingerprint)
	}
	if rep.Verdict != nil || rep.Chase != nil || rep.Acyclicity != nil {
		t.Errorf("classify report carries extra sections: %+v", rep)
	}
}

// TestAnalyzeDecideMatchesLegacy: the deprecated wrappers and the
// Analyzer must agree verdict-for-verdict — they are the same code.
func TestAnalyzeDecideMatchesLegacy(t *testing.T) {
	for _, src := range []string{
		`person(X) -> hasFather(X,Y), person(Y).`,
		`p(X,Y) -> p(X,Z).`,
		`gate(X,Y), live(X) -> out(Y,Z), live(Z).`,
	} {
		rules := chaseterm.MustParseRules(src)
		for _, v := range []chaseterm.Variant{chaseterm.Oblivious, chaseterm.SemiOblivious, chaseterm.Restricted} {
			rep, err := an.Analyze(context.Background(),
				chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules, chaseterm.WithVariant(v)))
			if err != nil {
				t.Fatalf("%s (%s): %v", src, v, err)
			}
			legacy, err := chaseterm.DecideTermination(rules, v)
			if err != nil {
				t.Fatalf("%s (%s): legacy: %v", src, v, err)
			}
			if !reflect.DeepEqual(rep.Verdict, legacy) {
				t.Errorf("%s (%s): Analyze %+v != legacy %+v", src, v, rep.Verdict, legacy)
			}
		}
	}
}

func TestAnalyzeDecideOnDatabase(t *testing.T) {
	rules := chaseterm.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	db := chaseterm.MustParseDatabase(`q(a).`) // no p-facts: inert
	rep, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
		chaseterm.WithDatabase(db), chaseterm.WithVariant(chaseterm.SemiOblivious)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict.Terminates != chaseterm.Yes {
		t.Errorf("fixed-db decide on inert database: %+v", rep.Verdict)
	}
	// Without the database the same rule set is non-terminating.
	rep, err = an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
		chaseterm.WithVariant(chaseterm.SemiOblivious)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict.Terminates != chaseterm.No {
		t.Errorf("all-instance decide: %+v", rep.Verdict)
	}
}

func TestAnalyzeChase(t *testing.T) {
	rules := chaseterm.MustParseRules(`professor(X) -> teaches(X,C).
	                                   teaches(X,C) -> course(C).`)
	db := chaseterm.MustParseDatabase(`professor(turing).`)
	rep, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeChase, rules,
		chaseterm.WithDatabase(db), chaseterm.WithVariant(chaseterm.Restricted), chaseterm.WithFacts()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chase == nil || rep.Chase.Outcome != chaseterm.Terminated {
		t.Fatalf("chase report: %+v", rep.Chase)
	}
	if rep.Chase.Stats.FactsAdded == 0 || len(rep.Chase.Facts()) == 0 {
		t.Errorf("chase stats/facts empty: %+v", rep.Chase.Stats)
	}
	// Certain-answer queries work on the report's result.
	got, err := rep.Chase.Query(`course(C)`, "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		// turing's course is anonymous, so there are no certain answers.
		t.Errorf("certain courses %v, want none", got)
	}
}

// TestAnalyzeChaseDefaultsToCriticalInstance: with no database attached
// the chase seeds from I*(Σ), mirroring the all-instance decision.
func TestAnalyzeChaseDefaultsToCriticalInstance(t *testing.T) {
	rules := chaseterm.MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	rep, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeChase, rules,
		chaseterm.WithChaseBudgets(chaseterm.ChaseOptions{MaxTriggers: 100, MaxFacts: 100})))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chase.Outcome == chaseterm.Terminated {
		t.Errorf("critical chase of Example 1 cannot terminate: %+v", rep.Chase)
	}
	if rep.Chase.Stats.InitialFacts != chaseterm.CriticalDatabase(rules).Size() {
		t.Errorf("initial facts %d, want the critical instance size", rep.Chase.Stats.InitialFacts)
	}
}

// TestAnalyzeChaseCancellation: the chase kind returns the partial
// report together with the context error, like RunChaseContext.
func TestAnalyzeChaseCancellation(t *testing.T) {
	rules := chaseterm.MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rep, err := an.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeChase, rules,
		chaseterm.WithChaseBudgets(chaseterm.ChaseOptions{MaxTriggers: 50_000_000, MaxFacts: 50_000_000})))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	if rep == nil || rep.Chase == nil || rep.Chase.Outcome != chaseterm.Canceled {
		t.Fatalf("canceled chase must return the partial report, got %+v", rep)
	}
}

// TestAnalyzeDecideCancellation: non-chase kinds return a nil report
// with the context error.
func TestAnalyzeDecideCancellation(t *testing.T) {
	rules := chaseterm.MustParseRules(`p(X), q(Y) -> s(X,Y). s(X,Y) -> p(Z), t(X,Z).`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := an.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want canceled", err)
	}
	if rep != nil {
		t.Fatalf("canceled decide returned a report: %+v", rep)
	}
}

func TestAnalyzeAcyclicity(t *testing.T) {
	rules := chaseterm.MustParseRules("p(X) -> q(X,Y).\nq(X,Y), q(Y,X) -> p(Y).")
	rep, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeAcyclicity, rules))
	if err != nil {
		t.Fatal(err)
	}
	want := chaseterm.CheckAcyclicity(rules)
	if rep.Acyclicity == nil || !reflect.DeepEqual(*rep.Acyclicity, want) {
		t.Errorf("acyclicity report %+v, want %+v", rep.Acyclicity, want)
	}
	if rep.Acyclicity.WeaklyAcyclic || !rep.Acyclicity.JointlyAcyclic {
		t.Errorf("JA-not-WA example misreported: %+v", rep.Acyclicity)
	}
}

// TestAnalyzeWithAcyclicityComposes: WithAcyclicity rides along any
// kind, so one request can carry a verdict and the criteria ladder.
func TestAnalyzeWithAcyclicityComposes(t *testing.T) {
	rules := chaseterm.MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	rep, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
		chaseterm.WithAcyclicity()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict == nil || rep.Verdict.Terminates != chaseterm.No {
		t.Errorf("verdict missing or wrong: %+v", rep.Verdict)
	}
	if rep.Acyclicity == nil || rep.Acyclicity.WeaklyAcyclic {
		t.Errorf("attached acyclicity report wrong: %+v", rep.Acyclicity)
	}
}

// TestStructLiteralRequestDefaultsToSemiOblivious: a Request built as a
// plain struct literal (bypassing NewRequest) must still get the
// documented SemiOblivious default, not the Variant zero value
// (Oblivious) — the two decide genuinely different problems.
func TestStructLiteralRequestDefaultsToSemiOblivious(t *testing.T) {
	// CT^o and CT^so differ on this set: dropping the frontier variable
	// keeps the semi-oblivious chase finite while the oblivious diverges.
	rules := chaseterm.MustParseRules(`p(X,Y) -> p(X,Z).`)
	rep, err := an.Analyze(context.Background(),
		chaseterm.Request{Kind: chaseterm.AnalyzeDecide, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict.Terminates != chaseterm.Yes {
		t.Errorf("struct-literal request decided %v — it ran the oblivious variant instead of the semi-oblivious default", rep.Verdict.Terminates)
	}
	if got := (chaseterm.Request{}).Variant(); got != chaseterm.SemiOblivious {
		t.Errorf("zero Request reports variant %v, want SemiOblivious", got)
	}
}

// TestDecideBudgetsApplyOnDatabase: WithDecideBudgets must bound the
// fixed-database deciders too, not just the all-instance ones.
func TestDecideBudgetsApplyOnDatabase(t *testing.T) {
	rules := chaseterm.MustParseRules(`gate(X,Y), live(X) -> out(Y,Z), live(Z).
	                                   out(Y,Z) -> gate(Y,Z).`)
	db := chaseterm.MustParseDatabase(`gate(a,b). live(a).`)
	_, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
		chaseterm.WithDatabase(db),
		chaseterm.WithDecideBudgets(chaseterm.DecideOptions{MaxNodeTypes: 1})))
	if err == nil {
		t.Fatal("a one-node-type budget cannot complete the guarded forest; want an error")
	}
}

func TestAnalyzeRejectsBadRequests(t *testing.T) {
	rules := chaseterm.MustParseRules(`p(X) -> q(X).`)
	if _, err := an.Analyze(context.Background(), chaseterm.Request{Kind: chaseterm.AnalyzeDecide}); err == nil {
		t.Error("nil rule set accepted")
	}
	if _, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalysisKind(42), rules)); err == nil {
		t.Error("unknown kind accepted")
	}
	// WithDatabase(nil) is a caller bug, not "no database": silently
	// answering the all-instance problem would be a different question.
	if _, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
		chaseterm.WithDatabase(nil))); err == nil {
		t.Error("nil database accepted")
	}
	if _, err := chaseterm.DecideTerminationOnDatabase(nil, rules, chaseterm.SemiOblivious); err == nil {
		t.Error("legacy wrapper accepted a nil database")
	}
}

func TestAnalysisKindRoundTrip(t *testing.T) {
	kinds := []chaseterm.AnalysisKind{
		chaseterm.AnalyzeClassify, chaseterm.AnalyzeDecide,
		chaseterm.AnalyzeChase, chaseterm.AnalyzeAcyclicity,
	}
	for _, k := range kinds {
		back, err := chaseterm.ParseAnalysisKind(k.String())
		if err != nil || back != k {
			t.Errorf("kind %v round-trips to (%v, %v)", k, back, err)
		}
	}
	if _, err := chaseterm.ParseAnalysisKind("mystery"); err == nil {
		t.Error("unknown kind name parsed")
	}
}
