// The looping operator live: entailment as the complement of termination.
//
// The paper's lower bounds all flow through one device — the looping
// operator, "a generic reduction from propositional atom entailment to the
// complement of chase termination". This example takes a graph
// reachability question (guarded Datalog entailment), applies the
// operator, and lets the exact guarded decider of Theorem 4 answer the
// entailment question by deciding termination of the transformed rules.
//
// Run with:  go run ./examples/looping
package main

import (
	"context"
	"fmt"
	"log"

	"chaseterm"
)

func main() {
	ctx := context.Background()
	var analyzer chaseterm.Analyzer
	rules := chaseterm.MustParseRules(`
% guarded Datalog: reachability along edges
edge(X,Y), reach(X) -> reach(Y).
`)
	db := chaseterm.MustParseDatabase(`
edge(a,b). edge(b,c). edge(c,d).
edge(x,y).            % a separate component
reach(a).
`)

	for _, goal := range []string{"reach(d)", "reach(y)"} {
		inst := chaseterm.EntailmentInstance{Rules: rules, DB: db, Goal: goal}

		// Ground truth by direct saturation.
		truth, err := chaseterm.EntailsContext(ctx, inst)
		if err != nil {
			log.Fatal(err)
		}

		// The reduction: loop the instance, then DECIDE TERMINATION.
		looped, err := chaseterm.LoopEntailment(inst)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, looped,
			chaseterm.WithVariant(chaseterm.SemiOblivious)))
		if err != nil {
			log.Fatal(err)
		}
		verdict := rep.Verdict
		derived := verdict.Terminates == chaseterm.No // non-termination ⟺ entailed

		fmt.Printf("goal %s:\n", goal)
		fmt.Printf("  direct entailment:            %v\n", truth)
		fmt.Printf("  looped rule set:              %d rules, class %s\n", rep.NumRules, rep.Class)
		fmt.Printf("  chase termination of Σ′:      %s (%s)\n", verdict.Terminates, verdict.Method)
		fmt.Printf("  entailment via the reduction: %v\n", derived)
		if derived != truth {
			log.Fatal("REDUCTION BROKEN — the looping operator must make these agree")
		}
		fmt.Println("  ✓ reduction agrees with ground truth")
		fmt.Println()
	}
	fmt.Println("This is why deciding chase termination is as hard as entailment —")
	fmt.Println("the route to the paper's NL/PSPACE/2EXPTIME-hardness results.")
}
