// Data exchange: computing a universal solution with the chase.
//
// The chase's original home (Fagin, Kolaitis, Miller, Popa — "Data
// exchange: semantics and query answering") is materializing a target
// instance from a source instance under schema mappings. This example
// defines a source-to-target mapping, certifies that the chase terminates
// (here the rules are simple-linear, so the decision is exact — for
// general mappings the weak-acyclicity fallback kicks in), and computes a
// universal solution whose labelled nulls stand for the invented employee
// and department identifiers.
//
// Run with:  go run ./examples/dataexchange
package main

import (
	"context"
	"fmt"
	"log"

	"chaseterm"
)

const mapping = `
% Source: emp(name, deptName), dept(deptName, mgrName)
% Target: works(eid, did), empName(eid, name), deptName(did, dn), mgr(did, eid)

emp(N, DN)  -> works(E, D), empName(E, N), deptName(D, DN).
dept(DN, MN) -> deptName(D, DN), mgr(D, M), empName(M, MN).
mgr(D, M)   -> works(M, D).
`

const source = `
emp(alice, toys).
emp(bob, books).
emp(carol, toys).    % carol also manages toys: her row is foldable
dept(toys, carol).
dept(books, dan).
`

func main() {
	ctx := context.Background()
	var analyzer chaseterm.Analyzer

	rules, err := chaseterm.ParseRules(mapping)
	if err != nil {
		log.Fatal(err)
	}

	cert, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
		chaseterm.WithVariant(chaseterm.Restricted)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapping: %d st-tgds, class %s\n", cert.NumRules, cert.Class)
	fmt.Printf("termination certificate: %s (%s)\n\n", cert.Verdict.Terminates, cert.Verdict.Method)
	if cert.Verdict.Terminates != chaseterm.Yes {
		log.Fatal("mapping not certified terminating")
	}

	db, err := chaseterm.ParseDatabase(source)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeChase, rules,
		chaseterm.WithDatabase(db), chaseterm.WithVariant(chaseterm.Restricted)))
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Chase
	fmt.Printf("universal solution (%s; %d source + %d target facts):\n",
		res.Outcome, res.Stats.InitialFacts, res.Stats.FactsAdded)
	for _, f := range res.Facts() {
		fmt.Println("  " + f)
	}
	fmt.Println("\nLabelled nulls (z1, z2, …) are the invented ids; any other solution")
	fmt.Println("of the exchange is a homomorphic image of this one (universality).")

	// The core: the minimal universal solution (redundant null facts
	// folded away).
	coreFacts, removed := res.CoreFacts()
	fmt.Printf("\ncore universal solution (%d redundant facts folded):\n", removed)
	for _, f := range coreFacts {
		fmt.Println("  " + f)
	}

	// Contrast the engines: the oblivious chase does redundant work that
	// the semi-oblivious one skips — the paper's Section 2 distinction.
	fmt.Println("\nengine comparison on the same input:")
	for _, v := range []chaseterm.Variant{chaseterm.Oblivious, chaseterm.SemiOblivious, chaseterm.Restricted} {
		db, _ := chaseterm.ParseDatabase(source)
		run, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeChase, rules,
			chaseterm.WithDatabase(db), chaseterm.WithVariant(v)))
		if err != nil {
			log.Fatal(err)
		}
		s := run.Chase.Stats
		fmt.Printf("  %-15s triggers=%d facts=%d noop=%d satisfied-skips=%d\n",
			v, s.TriggersApplied, s.FactsAdded, s.TriggersNoop, s.TriggersSatisfied)
	}
}
