// Quickstart: the paper's Example 1 end-to-end.
//
// The TGD  person(X) → ∃Y hasFather(X,Y) ∧ person(Y)  says every person
// has a father who is a person. On any database containing a person, the
// chase invents an infinite ancestor chain — this program classifies the
// rule, decides termination exactly for each chase variant, and shows a
// bounded run of the diverging chase.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chaseterm"
)

func main() {
	rules, err := chaseterm.ParseRules(`
% Example 1 of Calautti, Gottlob, Pieris (PODS 2015):
person(X) -> hasFather(X,Y), person(Y).
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rule set (%d rule, class %s):\n%s\n", rules.NumRules(), rules.Classify(), rules)

	// Exact termination decisions. For simple-linear rules these are the
	// critical-acyclicity characterizations of Theorem 1.
	for _, v := range []chaseterm.Variant{chaseterm.Oblivious, chaseterm.SemiOblivious} {
		verdict, err := chaseterm.DecideTermination(rules, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CT^%-15s %s  (method: %s)\n", v.String()+":", verdict.Terminates, verdict.Method)
		if verdict.Witness != "" {
			fmt.Printf("  witness: %s\n", verdict.Witness)
		}
	}

	// Watch the divergence: 8 chase steps from person(bob).
	db := chaseterm.MustParseDatabase(`person(bob).`)
	res, err := chaseterm.RunChase(db, rules, chaseterm.SemiOblivious, chaseterm.ChaseOptions{MaxTriggers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbounded chase run: %s after %d triggers, %d facts:\n",
		res.Outcome, res.Stats.TriggersApplied, res.Stats.InitialFacts+res.Stats.FactsAdded)
	for _, f := range res.Facts() {
		fmt.Println("  " + f)
	}
	fmt.Println("\n(the chain z1, z2, … would grow forever — exactly the paper's point)")
}
