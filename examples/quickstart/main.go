// Quickstart: the paper's Example 1 end-to-end.
//
// The TGD  person(X) → ∃Y hasFather(X,Y) ∧ person(Y)  says every person
// has a father who is a person. On any database containing a person, the
// chase invents an infinite ancestor chain — this program classifies the
// rule, decides termination exactly for each chase variant, and shows a
// bounded run of the diverging chase.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"chaseterm"
)

func main() {
	ctx := context.Background()
	var analyzer chaseterm.Analyzer

	rules, err := chaseterm.ParseRules(`
% Example 1 of Calautti, Gottlob, Pieris (PODS 2015):
person(X) -> hasFather(X,Y), person(Y).
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rule set (%d rule, class %s):\n%s\n", rules.NumRules(), rules.Classify(), rules)

	// Exact termination decisions. For simple-linear rules these are the
	// critical-acyclicity characterizations of Theorem 1.
	for _, v := range []chaseterm.Variant{chaseterm.Oblivious, chaseterm.SemiOblivious} {
		rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
			chaseterm.WithVariant(v)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CT^%-15s %s  (method: %s)\n", v.String()+":", rep.Verdict.Terminates, rep.Verdict.Method)
		if rep.Verdict.Witness != "" {
			fmt.Printf("  witness: %s\n", rep.Verdict.Witness)
		}
	}

	// Watch the divergence: 8 chase steps from person(bob).
	db := chaseterm.MustParseDatabase(`person(bob).`)
	rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeChase, rules,
		chaseterm.WithDatabase(db),
		chaseterm.WithVariant(chaseterm.SemiOblivious),
		chaseterm.WithChaseBudgets(chaseterm.ChaseOptions{MaxTriggers: 8})))
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Chase
	fmt.Printf("\nbounded chase run: %s after %d triggers, %d facts:\n",
		res.Outcome, res.Stats.TriggersApplied, res.Stats.InitialFacts+res.Stats.FactsAdded)
	for _, f := range res.Facts() {
		fmt.Println("  " + f)
	}
	fmt.Println("\n(the chain z1, z2, … would grow forever — exactly the paper's point)")
}
