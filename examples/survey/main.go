// Termination survey: the criteria ladder on a batch of rule sets.
//
// For each rule set the program reports its syntactic class, the three
// positional acyclicity conditions (rich ⊆ weak ⊆ joint), and the exact
// verdicts of the paper's deciders — showing, row by row, where each
// sufficient condition stops being able to answer and the exact
// characterizations take over.
//
// Run with:  go run ./examples/survey
package main

import (
	"context"
	"fmt"
	"log"

	"chaseterm"
)

type entry struct {
	name string
	src  string
}

var batch = []entry{
	{"Example 1 (paper)", `person(X) -> hasFather(X,Y), person(Y).`},
	{"Example 2 (paper)", `p(X,Y) -> p(Y,Z).`},
	{"frontier dropped", `p(X,Y) -> p(X,Z).`},
	{"repeated body var", `p(X,X) -> p(X,Z).`},
	{"JA-not-WA", "p(X) -> q(X,Y).\nq(X,Y), q(Y,X) -> p(Y)."},
	{"guarded gate", `g(X,Y), gate(X) -> g(Y,Z).`},
	{"guarded re-armed", `g(X,Y), gate(X) -> g(Y,Z), gate(Y).`},
	{"data exchange", "emp(N,DN) -> works(E,D), empName(E,N), deptName(D,DN).\nmgr(D,M) -> works(M,D)."},
}

func main() {
	fmt.Printf("%-20s %-13s %-3s %-3s %-3s %-16s %-16s\n",
		"rule set", "class", "RA", "WA", "JA", "CT^o", "CT^so")
	fmt.Println(" (RA ⇒ CT^o; WA/JA ⇒ CT^so; the deciders are exact on linear/guarded sets)")
	ctx := context.Background()
	var analyzer chaseterm.Analyzer
	for _, e := range batch {
		rules, err := chaseterm.ParseRules(e.src)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		// One composite request per row: the oblivious verdict with the
		// acyclicity ladder attached, then the semi-oblivious verdict.
		o, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
			chaseterm.WithVariant(chaseterm.Oblivious), chaseterm.WithAcyclicity()))
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		so, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
			chaseterm.WithVariant(chaseterm.SemiOblivious)))
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		acyc := o.Acyclicity
		fmt.Printf("%-20s %-13s %-3s %-3s %-3s %-16s %-16s\n",
			e.name, o.Class,
			mark(acyc.RichlyAcyclic), mark(acyc.WeaklyAcyclic), mark(acyc.JointlyAcyclic),
			o.Verdict.Terminates, so.Verdict.Terminates)
	}
	fmt.Println("\nRows where RA/WA/JA say '·' but the verdict is 'terminating' are exactly")
	fmt.Println("the cases the paper's Theorems 2 and 4 were needed for.")
}

func mark(b bool) string {
	if b {
		return "✓"
	}
	return "·"
}
