// Termination survey: the criteria ladder on a batch of rule sets.
//
// For each rule set the program reports its syntactic class, the three
// positional acyclicity conditions (rich ⊆ weak ⊆ joint), and the exact
// verdicts of the paper's deciders — showing, row by row, where each
// sufficient condition stops being able to answer and the exact
// characterizations take over.
//
// Run with:  go run ./examples/survey
package main

import (
	"fmt"
	"log"

	"chaseterm"
)

type entry struct {
	name string
	src  string
}

var batch = []entry{
	{"Example 1 (paper)", `person(X) -> hasFather(X,Y), person(Y).`},
	{"Example 2 (paper)", `p(X,Y) -> p(Y,Z).`},
	{"frontier dropped", `p(X,Y) -> p(X,Z).`},
	{"repeated body var", `p(X,X) -> p(X,Z).`},
	{"JA-not-WA", "p(X) -> q(X,Y).\nq(X,Y), q(Y,X) -> p(Y)."},
	{"guarded gate", `g(X,Y), gate(X) -> g(Y,Z).`},
	{"guarded re-armed", `g(X,Y), gate(X) -> g(Y,Z), gate(Y).`},
	{"data exchange", "emp(N,DN) -> works(E,D), empName(E,N), deptName(D,DN).\nmgr(D,M) -> works(M,D)."},
}

func main() {
	fmt.Printf("%-20s %-13s %-3s %-3s %-3s %-16s %-16s\n",
		"rule set", "class", "RA", "WA", "JA", "CT^o", "CT^so")
	fmt.Println(" (RA ⇒ CT^o; WA/JA ⇒ CT^so; the deciders are exact on linear/guarded sets)")
	for _, e := range batch {
		rules, err := chaseterm.ParseRules(e.src)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		rep := chaseterm.CheckAcyclicity(rules)
		o, err := chaseterm.DecideTermination(rules, chaseterm.Oblivious)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		so, err := chaseterm.DecideTermination(rules, chaseterm.SemiOblivious)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("%-20s %-13s %-3s %-3s %-3s %-16s %-16s\n",
			e.name, rules.Classify(),
			mark(rep.RichlyAcyclic), mark(rep.WeaklyAcyclic), mark(rep.JointlyAcyclic),
			o.Terminates, so.Terminates)
	}
	fmt.Println("\nRows where RA/WA/JA say '·' but the verdict is 'terminating' are exactly")
	fmt.Println("the cases the paper's Theorems 2 and 4 were needed for.")
}

func mark(b bool) string {
	if b {
		return "✓"
	}
	return "·"
}
