// Ontology reasoning with simple-linear rules.
//
// The paper emphasizes that simple-linear TGDs capture inclusion
// dependencies and key description logics such as DL-Lite. This example
// models a small university ontology as SL rules, certifies chase
// termination up front with the exact decider (Theorem 1 machinery), and
// then materializes the knowledge base with the restricted chase to answer
// queries.
//
// Run with:  go run ./examples/ontology
package main

import (
	"context"
	"fmt"
	"log"

	"chaseterm"
)

const ontology = `
% TBox as simple-linear TGDs (one body atom, no repeated body variables):
professor(X)  -> teaches(X,C).           % professor ⊑ ∃teaches
teaches(X,C)  -> course(C).              % ∃teaches⁻ ⊑ course
student(X)    -> attends(X,C).           % student ⊑ ∃attends
attends(X,C)  -> course(C).              % ∃attends⁻ ⊑ course
advises(X,Y)  -> professor(X).           % ∃advises ⊑ professor
advises(X,Y)  -> student(Y).             % ∃advises⁻ ⊑ student
course(C)     -> teaches(P,C).           % every course is taught by someone
`

const abox = `
professor(turing).
student(ada).
advises(turing, ada).
attends(ada, logic101).
`

func main() {
	ctx := context.Background()
	var analyzer chaseterm.Analyzer

	rules, err := chaseterm.ParseRules(ontology)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TBox: %d rules, class %s\n", rules.NumRules(), rules.Classify())

	// Certify termination before materializing — for every chase variant.
	for _, v := range []chaseterm.Variant{chaseterm.Oblivious, chaseterm.SemiOblivious, chaseterm.Restricted} {
		rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
			chaseterm.WithVariant(v)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CT^%-15s %s (%s)\n", v.String()+":", rep.Verdict.Terminates, rep.Verdict.Method)
		if rep.Verdict.Terminates == chaseterm.No {
			log.Fatal("ontology chase would diverge; aborting materialization")
		}
	}

	db, err := chaseterm.ParseDatabase(abox)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeChase, rules,
		chaseterm.WithDatabase(db), chaseterm.WithVariant(chaseterm.Restricted)))
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Chase
	fmt.Printf("\nmaterialized ABox (%s, %d facts, %d triggers):\n",
		res.Outcome, db.Size()+res.Stats.FactsAdded, res.Stats.TriggersApplied)
	for _, f := range res.Facts() {
		fmt.Println("  " + f)
	}

	// Certain answers over the universal model — the chase's raison
	// d'être for query answering under constraints.
	fmt.Println("\ncertain answers over the universal model:")
	courses, err := res.Query(`course(C)`, "C")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  known courses: %v\n", courses)
	taught, err := res.Holds(`teaches(P, logic101)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  logic101 is certainly taught by someone: %v\n", taught)
	pairs, err := res.Query(`advises(P,S), attends(S,C)`, "P", "C")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (advisor, advisee's course) pairs: %v\n", pairs)
}
