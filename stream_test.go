package chaseterm

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// recordingSink collects batches and heartbeats delivered by
// WithChaseSink, copying the (reused) batch slices.
type recordingSink struct {
	batches  [][]string
	progress int
	last     ChaseStats
}

func (s *recordingSink) EmitFacts(facts []string, stats ChaseStats) {
	s.batches = append(s.batches, append([]string(nil), facts...))
	s.last = stats
}

func (s *recordingSink) Progress(stats ChaseStats) {
	s.progress++
	s.last = stats
}

// TestAnalyzeChaseStreamsEveryFact: the concatenated batches must equal
// the derived portion of the final instance — every derived fact exactly
// once, none of the initial database.
func TestAnalyzeChaseStreamsEveryFact(t *testing.T) {
	var facts strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&facts, "e(a%d,a%d).\n", i, i+1)
	}
	rules := MustParseRules("e(X,Y) -> r(X,Y).\nr(X,Y) -> s(Y,X).")
	db := MustParseDatabase(facts.String())
	sink := &recordingSink{}
	var an Analyzer
	rep, err := an.Analyze(context.Background(), NewRequest(AnalyzeChase, rules,
		WithDatabase(db), WithChaseSink(sink)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chase.Outcome != Terminated {
		t.Fatalf("outcome %v", rep.Chase.Outcome)
	}
	var streamed []string
	for _, b := range sink.batches {
		streamed = append(streamed, b...)
	}
	if len(streamed) != rep.Chase.Stats.FactsAdded {
		t.Fatalf("streamed %d facts, run derived %d", len(streamed), rep.Chase.Stats.FactsAdded)
	}
	// The streamed facts plus the database are exactly the final model.
	all := append([]string(nil), streamed...)
	for i := 0; i < 300; i++ {
		all = append(all, fmt.Sprintf("e(a%d,a%d)", i, i+1))
	}
	sort.Strings(all)
	want := rep.Chase.Facts()
	if len(all) != len(want) {
		t.Fatalf("stream+db has %d facts, final instance %d", len(all), len(want))
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("fact %d: streamed %q, final %q", i, all[i], want[i])
		}
	}
	// 600 derived facts with batch size 256 means at least 2 batches —
	// the adapter really batches instead of one call per trigger.
	if len(sink.batches) < 2 {
		t.Errorf("expected multiple batches, got %d", len(sink.batches))
	}
	if s := sink.last; s.FactsAdded != rep.Chase.Stats.FactsAdded {
		t.Errorf("final sink stats %+v lag report %+v", s, rep.Chase.Stats)
	}
}

// TestAnalyzeChaseSinkIgnoredByOtherKinds: attaching a sink to a decide
// request is inert, not an error.
func TestAnalyzeChaseSinkIgnoredByOtherKinds(t *testing.T) {
	rules := MustParseRules("person(X) -> hasFather(X,Y), person(Y).")
	sink := &recordingSink{}
	var an Analyzer
	rep, err := an.Analyze(context.Background(), NewRequest(AnalyzeDecide, rules, WithChaseSink(sink)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict == nil || rep.Verdict.Terminates != No {
		t.Fatalf("verdict %+v", rep.Verdict)
	}
	if len(sink.batches) != 0 || sink.progress != 0 {
		t.Error("decide request drove the chase sink")
	}
}
