module chaseterm

go 1.24
